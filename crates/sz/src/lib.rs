//! # lcc-sz — an SZ-style prediction-based error-bounded lossy compressor
//!
//! A from-scratch Rust reimplementation of the SZ 2.x algorithm family used
//! in the paper, preserving the structural properties the study depends on:
//!
//! 1. the field is scanned **block by block** (16×16 for 2D data, as in the
//!    paper's description),
//! 2. each block is predicted either with the **Lorenzo predictor**
//!    (neighbouring reconstructed values) or a **block regression predictor**
//!    (a hyper-plane fitted to the block),
//! 3. prediction residuals are **linearly quantized** against the absolute
//!    error bound; codes outside the quantization radius are stored exactly
//!    ("unpredictable" values),
//! 4. the quantization codes go through a **Huffman** coder and the whole
//!    stream through an **LZ77** pass (standing in for Zstd).
//!
//! Because every reconstructed value is either `prediction + code·2ε`
//! (with `|residual − code·2ε| ≤ ε`) or stored exactly, the absolute error
//! bound holds point-wise by construction.
//!
//! ```
//! use lcc_grid::Field2D;
//! use lcc_pressio::{Compressor, ErrorBound};
//! use lcc_sz::SzCompressor;
//!
//! let field = Field2D::from_fn(64, 64, |i, j| (i as f64 * 0.05).sin() + (j as f64 * 0.04).cos());
//! let sz = SzCompressor::default();
//! let result = sz.compress(&field, ErrorBound::Absolute(1e-3)).unwrap();
//! assert!(result.metrics.max_abs_error <= 1e-3);
//! assert!(result.metrics.compression_ratio > 1.0);
//! ```

pub mod predictor;
pub mod quantize;
pub mod stream;

use lcc_grid::{Field2D, FieldView, WindowIter};
use lcc_lossless::dispatch::simd_level;
use lcc_lossless::{
    huffman_decode_with, huffman_encode_with, lz77_compress_with, lz77_decompress_into,
    rans8_decode_with, rans8_encode_with, rans_decode_with, rans_encode_with, CodecScratch,
    EntropyBackend, RansScratch,
};
use lcc_pressio::{validate_finite_view, CompressError, Compressor, ErrorBound, ScratchArena};
use predictor::{lorenzo_predict, plane_predict, BlockMode};
use quantize::Quantizer;
use stream::{StreamReader, StreamWriter};

/// Configuration of the SZ-style compressor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SzConfig {
    /// Side length of the square prediction blocks (paper: 16 for 2D).
    pub block_size: usize,
    /// Quantization radius: codes are accepted in `[-radius, radius]`.
    pub quantization_radius: u32,
    /// Enable the block regression (hyper-plane) predictor in addition to
    /// Lorenzo. Disabling it is the `sz_predictor_ablation` bench baseline.
    pub enable_regression: bool,
    /// Entropy backend of the quantized-residual stream. [`EntropyBackend::Huffman`]
    /// (the default) emits the historical `LSZ1` container — Huffman codes
    /// plus the outer LZ77 pass — byte-identical to every earlier release.
    /// [`EntropyBackend::Rans`] emits the `LSR1` container: interleaved rANS
    /// codes and **no** outer LZ77 pass (rANS output is already near the
    /// entropy, so the pass costs most of the encode time for ~no ratio) —
    /// the fast point of the ratio-vs-throughput ablation.
    /// [`EntropyBackend::Rans8`] emits the `LS81` container: identical layout
    /// to `LSR1` but with the 8-way interleaved rANS stream, whose decoder
    /// runs wide under SIMD dispatch — the throughput-first point.
    pub entropy: EntropyBackend,
}

impl Default for SzConfig {
    fn default() -> Self {
        SzConfig {
            block_size: 16,
            quantization_radius: 32768,
            enable_regression: true,
            entropy: EntropyBackend::Huffman,
        }
    }
}

/// The SZ-style compressor. See the crate-level documentation.
#[derive(Debug, Clone, Copy, Default)]
pub struct SzCompressor {
    config: SzConfig,
}

impl SzCompressor {
    /// Create a compressor with an explicit configuration.
    pub fn new(config: SzConfig) -> Self {
        assert!(config.block_size >= 2, "block size must be at least 2");
        assert!(config.quantization_radius >= 2, "quantization radius must be at least 2");
        SzCompressor { config }
    }

    /// Create a Lorenzo-only variant (regression predictor disabled).
    pub fn lorenzo_only() -> Self {
        SzCompressor::new(SzConfig { enable_regression: false, ..SzConfig::default() })
    }

    /// Create the rANS-backend variant (registry name `sz-rans`).
    pub fn rans() -> Self {
        SzCompressor::new(SzConfig { entropy: EntropyBackend::Rans, ..SzConfig::default() })
    }

    /// Create the 8-way rANS-backend variant (registry name `sz-rans8`).
    pub fn rans8() -> Self {
        SzCompressor::new(SzConfig { entropy: EntropyBackend::Rans8, ..SzConfig::default() })
    }

    /// The active configuration.
    pub fn config(&self) -> SzConfig {
        self.config
    }
}

const MAGIC: &[u8; 4] = b"LSZ1";
/// Magic of the rANS-backend container. Emitted at the top level (the `LSR1`
/// payload is not LZ77-wrapped), which cannot collide with an `LSZ1` stream:
/// LZ77 output opens with the decompressed-length varint, and whenever its
/// first byte could read as `b'L'` (a single-byte varint, high bit clear)
/// the next byte is a token tag of `0x00`/`0x01`, never `b'S'`.
const RANS_MAGIC: &[u8; 4] = b"LSR1";
/// Magic of the 8-way rANS-backend container — same top-level raw layout as
/// `LSR1` (and the same collision argument against `LSZ1` streams), but the
/// codes section holds an 8-lane interleaved stream.
const RANS8_MAGIC: &[u8; 4] = b"LS81";

/// Reusable working memory of the SZ compress path: one instance per sweep
/// worker (held in a [`ScratchArena`]) turns every per-call allocation —
/// reconstruction, code/exact buffers, block metadata, the assembled
/// payload, and the Huffman/LZ77 internals — into a cleared-not-freed reuse.
#[derive(Debug, Default)]
pub struct SzScratch {
    /// Huffman + LZ77 working memory.
    codec: CodecScratch,
    /// rANS working memory (the `sz-rans` backend).
    rans: RansScratch,
    /// Row-major reconstruction buffer. Never zeroed: the block scan writes
    /// every cell before any predictor reads it (Lorenzo only looks at
    /// already-visited neighbours and treats the field boundary as zero
    /// explicitly), so stale values from a previous call are never read.
    recon: Vec<f64>,
    /// Quantization code per cell.
    codes: Vec<u32>,
    /// Exactly-stored values (quantizer escapes).
    exact: Vec<f64>,
    /// Predictor choice per block.
    modes: Vec<BlockMode>,
    /// Regression coefficients for regression blocks.
    planes: Vec<[f64; 3]>,
    /// Encoded entropy section (Huffman or rANS, per the backend).
    huff: Vec<u8>,
    /// Assembled container payload (input of the final LZ77 pass).
    payload: StreamWriter,
    /// Decode side: the LZ77-expanded container payload.
    dec_payload: Vec<u8>,
}

impl SzScratch {
    /// Create an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        SzScratch::default()
    }
}

/// Quantize one cell into the code/exact streams and the reconstruction
/// slot — the shared tail of the specialized predictor loops.
#[inline(always)]
fn quantize_cell(
    quantizer: &Quantizer,
    original: f64,
    prediction: f64,
    codes: &mut Vec<u32>,
    exact: &mut Vec<f64>,
    slot: &mut f64,
) {
    match quantizer.quantize(original, prediction) {
        Some((code, reconstructed)) => {
            codes.push(code);
            *slot = reconstructed;
        }
        None => {
            codes.push(quantize::UNPREDICTABLE);
            exact.push(original);
            *slot = original;
        }
    }
}

impl SzCompressor {
    /// The compress pipeline over explicit scratch memory. Byte-identical to
    /// [`Compressor::compress_view`] (which calls this with fresh scratch).
    fn compress_into(
        &self,
        field: &FieldView<'_>,
        bound: ErrorBound,
        s: &mut SzScratch,
    ) -> Result<Vec<u8>, CompressError> {
        validate_finite_view(field)?;
        let eb = bound.absolute_for_view(field)?;
        let (ny, nx) = field.shape();
        let bs = self.config.block_size;
        let quantizer = Quantizer::new(eb, self.config.quantization_radius);
        // One dispatch lookup per stream, threaded into the row kernel.
        let level = simd_level();

        // Reconstruction buffer: predictions always read reconstructed values
        // so the decompressor sees the same inputs.
        s.recon.resize(ny * nx, 0.0);
        s.codes.clear();
        s.codes.reserve(ny * nx);
        s.exact.clear();
        s.modes.clear();
        s.planes.clear();

        for win in WindowIter::over(ny, nx, bs, bs) {
            // Choose the predictor for this block from the original data
            // (the selection pass already fits the plane, so regression
            // blocks reuse it instead of fitting twice).
            let plane = if self.config.enable_regression {
                let (mode, p) = predictor::select_mode_with_plane(field, &win);
                s.modes.push(mode);
                match mode {
                    BlockMode::Regression => {
                        s.planes.push(p);
                        Some(p)
                    }
                    BlockMode::Lorenzo => None,
                }
            } else {
                s.modes.push(BlockMode::Lorenzo);
                None
            };

            for i in win.i0..win.i0 + win.height {
                let orig_row = field.row(i);
                // Split the reconstruction at row `i` so the already-written
                // row above is readable while this row is written.
                let (above, current) = s.recon.split_at_mut(i * nx);
                let above_row: &[f64] = if i > 0 { &above[(i - 1) * nx..] } else { &[] };
                let cur_row = &mut current[..nx];
                // Specialized per-predictor row loops: the predictor is
                // block-invariant, so the dispatch stays out of the cell
                // path (the Lorenzo chain is serial through `quantize`; the
                // plane loop is independent per cell).
                match plane {
                    Some(p) => {
                        // Independent per cell → the runtime-dispatched row
                        // kernel (AVX2 4-lane on capable hosts, scalar
                        // otherwise; bit-identical streams either way).
                        let di = i - win.i0;
                        let span = win.j0..win.j0 + win.width;
                        quantize::quantize_plane_row_at(
                            level,
                            &quantizer,
                            &p,
                            di,
                            &orig_row[span.clone()],
                            &mut cur_row[span],
                            &mut s.codes,
                            &mut s.exact,
                        );
                    }
                    None => {
                        for j in win.j0..win.j0 + win.width {
                            let original = orig_row[j];
                            let up = if i > 0 { above_row[j] } else { 0.0 };
                            let left = if j > 0 { cur_row[j - 1] } else { 0.0 };
                            let diag = if i > 0 && j > 0 { above_row[j - 1] } else { 0.0 };
                            quantize_cell(
                                &quantizer,
                                original,
                                up + left - diag,
                                &mut s.codes,
                                &mut s.exact,
                                &mut cur_row[j],
                            );
                        }
                    }
                }
            }
        }

        // Assemble the self-describing payload (the magic names the entropy
        // backend of the codes section).
        let w = &mut s.payload;
        w.clear();
        w.bytes(match self.config.entropy {
            EntropyBackend::Huffman => MAGIC,
            EntropyBackend::Rans => RANS_MAGIC,
            EntropyBackend::Rans8 => RANS8_MAGIC,
        });
        w.u64(ny as u64);
        w.u64(nx as u64);
        w.f64(eb);
        w.u32(self.config.block_size as u32);
        w.u32(self.config.quantization_radius);
        w.u64(s.modes.len() as u64);
        for m in &s.modes {
            w.u8(match m {
                BlockMode::Lorenzo => 0,
                BlockMode::Regression => 1,
            });
        }
        w.u64(s.planes.len() as u64);
        for p in &s.planes {
            w.f64(p[0]);
            w.f64(p[1]);
            w.f64(p[2]);
        }
        s.huff.clear();
        match self.config.entropy {
            EntropyBackend::Huffman => huffman_encode_with(&mut s.codec, &s.codes, &mut s.huff),
            EntropyBackend::Rans => rans_encode_with(&mut s.rans, &s.codes, &mut s.huff),
            EntropyBackend::Rans8 => rans8_encode_with(&mut s.rans, &s.codes, &mut s.huff),
        }
        w.u64(s.huff.len() as u64);
        w.bytes(&s.huff);
        w.u64(s.exact.len() as u64);
        for v in &s.exact {
            w.f64(*v);
        }

        match self.config.entropy {
            // Final lossless pass over the assembled payload (Zstd's role).
            EntropyBackend::Huffman => {
                let mut out = Vec::new();
                lz77_compress_with(&mut s.codec, s.payload.as_bytes(), &mut out);
                Ok(out)
            }
            // The rANS payloads ship raw: their dominant section is already
            // entropy-coded, so the LZ77 pass would trade most of the encode
            // time for ~no ratio (the ablation's fast points).
            EntropyBackend::Rans | EntropyBackend::Rans8 => Ok(s.payload.as_bytes().to_vec()),
        }
    }
}

impl Compressor for SzCompressor {
    fn name(&self) -> &str {
        match self.config.entropy {
            EntropyBackend::Huffman => "sz",
            EntropyBackend::Rans => "sz-rans",
            EntropyBackend::Rans8 => "sz-rans8",
        }
    }

    fn description(&self) -> &str {
        match self.config.entropy {
            EntropyBackend::Huffman => {
                "SZ-style block prediction (Lorenzo + regression) with linear quantization, \
                 Huffman and LZ77"
            }
            EntropyBackend::Rans => {
                "SZ-style block prediction (Lorenzo + regression) with linear quantization \
                 and interleaved rANS"
            }
            EntropyBackend::Rans8 => {
                "SZ-style block prediction (Lorenzo + regression) with linear quantization \
                 and 8-way interleaved rANS"
            }
        }
    }

    fn compress_view(
        &self,
        field: &FieldView<'_>,
        bound: ErrorBound,
    ) -> Result<Vec<u8>, CompressError> {
        self.compress_into(field, bound, &mut SzScratch::new())
    }

    fn compress_view_with(
        &self,
        field: &FieldView<'_>,
        bound: ErrorBound,
        scratch: &mut ScratchArena,
    ) -> Result<Vec<u8>, CompressError> {
        self.compress_into(field, bound, scratch.get_or_default::<SzScratch>())
    }

    fn decompress_view_with(
        &self,
        stream: &[u8],
        scratch: &mut ScratchArena,
        out: &mut Field2D,
    ) -> Result<(), CompressError> {
        let s = scratch.get_or_default::<SzScratch>();
        // Streams self-describe their backend: `LSR1`/`LS81` containers are
        // raw at the top level, everything else is the historical LZ77
        // wrapping.
        let payload: &[u8] = if stream.starts_with(RANS_MAGIC) || stream.starts_with(RANS8_MAGIC) {
            stream
        } else {
            lz77_decompress_into(stream, &mut s.dec_payload)
                .map_err(|e| CompressError::CorruptStream(format!("lz77: {e}")))?;
            &s.dec_payload
        };
        let mut r = StreamReader::new(payload);
        let magic = r.bytes(4)?;
        let codes_backend = if magic == MAGIC {
            EntropyBackend::Huffman
        } else if magic == RANS_MAGIC {
            EntropyBackend::Rans
        } else if magic == RANS8_MAGIC {
            EntropyBackend::Rans8
        } else {
            return Err(CompressError::CorruptStream("bad magic".into()));
        };
        let ny = r.u64()? as usize;
        let nx = r.u64()? as usize;
        let eb = r.f64()?;
        let block_size = r.u32()? as usize;
        let radius = r.u32()?;
        if ny == 0 || nx == 0 || block_size < 2 {
            return Err(CompressError::CorruptStream("invalid header".into()));
        }
        // Checked up front: a forged header must not wrap `ny * nx` (the
        // cell-count comparison below and `out.resize` both rely on it).
        let cells = ny
            .checked_mul(nx)
            .ok_or_else(|| CompressError::CorruptStream("cell count overflows".into()))?;
        let quantizer = Quantizer::new(eb, radius);

        let n_modes = r.u64()? as usize;
        s.modes.clear();
        s.modes.reserve(n_modes.min(r.remaining()));
        for _ in 0..n_modes {
            s.modes.push(match r.u8()? {
                0 => BlockMode::Lorenzo,
                1 => BlockMode::Regression,
                other => {
                    return Err(CompressError::CorruptStream(format!("unknown block mode {other}")))
                }
            });
        }
        let n_planes = r.u64()? as usize;
        s.planes.clear();
        s.planes.reserve(n_planes.min(r.remaining() / 24));
        for _ in 0..n_planes {
            s.planes.push([r.f64()?, r.f64()?, r.f64()?]);
        }
        let huff_len = r.u64()? as usize;
        let huff_bytes = r.bytes(huff_len)?;
        match codes_backend {
            EntropyBackend::Huffman => huffman_decode_with(&mut s.codec, huff_bytes, &mut s.codes)
                .map_err(|e| CompressError::CorruptStream(format!("huffman: {e}")))?,
            EntropyBackend::Rans => rans_decode_with(&mut s.rans, huff_bytes, &mut s.codes)
                .map_err(|e| CompressError::CorruptStream(format!("rans: {e}")))?,
            EntropyBackend::Rans8 => rans8_decode_with(&mut s.rans, huff_bytes, &mut s.codes)
                .map_err(|e| CompressError::CorruptStream(format!("rans8: {e}")))?,
        };
        if s.codes.len() != cells {
            return Err(CompressError::CorruptStream(format!(
                "expected {cells} codes, found {}",
                s.codes.len()
            )));
        }
        let n_exact = r.u64()? as usize;
        s.exact.clear();
        s.exact.reserve(n_exact.min(r.remaining() / 8));
        for _ in 0..n_exact {
            s.exact.push(r.f64()?);
        }

        // Replay the prediction/quantization chain. `resize` leaves stale
        // contents, but the block scan writes every cell before any Lorenzo
        // read touches it (the encoder's reconstruction buffer relies on the
        // same invariant).
        out.resize(ny, nx);
        let mut code_idx = 0usize;
        let mut exact_idx = 0usize;
        let mut plane_idx = 0usize;

        for (mode_idx, win) in WindowIter::over(ny, nx, block_size, block_size).enumerate() {
            if mode_idx >= s.modes.len() {
                return Err(CompressError::CorruptStream("missing block mode".into()));
            }
            let mode = s.modes[mode_idx];
            let plane = match mode {
                BlockMode::Regression => {
                    if plane_idx >= s.planes.len() {
                        return Err(CompressError::CorruptStream("missing plane".into()));
                    }
                    plane_idx += 1;
                    Some(s.planes[plane_idx - 1])
                }
                BlockMode::Lorenzo => None,
            };
            for i in win.i0..win.i0 + win.height {
                for j in win.j0..win.j0 + win.width {
                    let code = s.codes[code_idx];
                    code_idx += 1;
                    let value = if code == quantize::UNPREDICTABLE {
                        if exact_idx >= s.exact.len() {
                            return Err(CompressError::CorruptStream("missing exact value".into()));
                        }
                        exact_idx += 1;
                        s.exact[exact_idx - 1]
                    } else {
                        let prediction = match plane {
                            Some(p) => plane_predict(&p, i - win.i0, j - win.j0),
                            None => lorenzo_predict(out, i, j),
                        };
                        quantizer.dequantize(code, prediction)
                    };
                    out.set(i, j, value);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_field(n: usize) -> Field2D {
        Field2D::from_fn(n, n, |i, j| {
            ((i as f64) * 0.02).sin() * 2.0 + ((j as f64) * 0.03).cos() + 0.001 * (i as f64)
        })
    }

    fn rough_field(n: usize, seed: u64) -> Field2D {
        let mut state = seed.max(1);
        Field2D::from_fn(n, n, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) * 2.0 - 1.0
        })
    }

    #[test]
    fn error_bound_holds_on_smooth_field() {
        let field = smooth_field(80);
        let sz = SzCompressor::default();
        for eb in [1e-5, 1e-4, 1e-3, 1e-2] {
            let r = sz.compress(&field, ErrorBound::Absolute(eb)).unwrap();
            assert!(r.metrics.max_abs_error <= eb, "eb={eb}: {}", r.metrics.max_abs_error);
        }
    }

    #[test]
    fn error_bound_holds_on_random_field() {
        let field = rough_field(64, 7);
        let sz = SzCompressor::default();
        for eb in [1e-4, 1e-2, 0.3] {
            let r = sz.compress(&field, ErrorBound::Absolute(eb)).unwrap();
            assert!(r.metrics.max_abs_error <= eb, "eb={eb}: {}", r.metrics.max_abs_error);
        }
    }

    #[test]
    fn smooth_fields_compress_better_than_rough() {
        let sz = SzCompressor::default();
        let smooth = sz.compress(&smooth_field(96), ErrorBound::Absolute(1e-3)).unwrap();
        let rough = sz.compress(&rough_field(96, 3), ErrorBound::Absolute(1e-3)).unwrap();
        assert!(
            smooth.metrics.compression_ratio > 2.0 * rough.metrics.compression_ratio,
            "smooth CR {} vs rough CR {}",
            smooth.metrics.compression_ratio,
            rough.metrics.compression_ratio
        );
    }

    #[test]
    fn looser_bounds_give_higher_ratios() {
        let field = smooth_field(96);
        let sz = SzCompressor::default();
        let tight = sz.compress(&field, ErrorBound::Absolute(1e-5)).unwrap();
        let loose = sz.compress(&field, ErrorBound::Absolute(1e-2)).unwrap();
        assert!(loose.metrics.compression_ratio > tight.metrics.compression_ratio);
    }

    #[test]
    fn constant_field_compresses_enormously() {
        let field = Field2D::filled(64, 64, 3.75);
        let sz = SzCompressor::default();
        let r = sz.compress(&field, ErrorBound::Absolute(1e-6)).unwrap();
        assert_eq!(r.metrics.max_abs_error, 0.0);
        assert!(r.metrics.compression_ratio > 50.0, "CR = {}", r.metrics.compression_ratio);
    }

    #[test]
    fn non_square_and_non_multiple_shapes_roundtrip() {
        let field = Field2D::from_fn(37, 53, |i, j| (i as f64 - j as f64) * 0.01);
        let sz = SzCompressor::default();
        let r = sz.compress(&field, ErrorBound::Absolute(1e-4)).unwrap();
        assert_eq!(r.reconstruction.shape(), (37, 53));
        assert!(r.metrics.max_abs_error <= 1e-4);
    }

    #[test]
    fn value_range_relative_bound_is_supported() {
        let field = smooth_field(48);
        let range = field.value_range();
        let sz = SzCompressor::default();
        let r = sz.compress(&field, ErrorBound::ValueRangeRelative(1e-3)).unwrap();
        assert!(r.metrics.max_abs_error <= 1e-3 * range * 1.0000001);
    }

    #[test]
    fn lorenzo_only_variant_still_respects_bound() {
        let field = smooth_field(64);
        let sz = SzCompressor::lorenzo_only();
        assert!(!sz.config().enable_regression);
        let r = sz.compress(&field, ErrorBound::Absolute(1e-3)).unwrap();
        assert!(r.metrics.max_abs_error <= 1e-3);
    }

    #[test]
    fn rejects_invalid_inputs() {
        let mut field = Field2D::zeros(8, 8);
        let sz = SzCompressor::default();
        assert!(sz.compress_field(&field, ErrorBound::Absolute(0.0)).is_err());
        field.set(0, 0, f64::NAN);
        assert!(sz.compress_field(&field, ErrorBound::Absolute(1e-3)).is_err());
    }

    #[test]
    fn corrupt_streams_are_rejected() {
        let field = smooth_field(32);
        let sz = SzCompressor::default();
        let stream = sz.compress_field(&field, ErrorBound::Absolute(1e-3)).unwrap();
        assert!(sz.decompress_field(&stream[..stream.len() / 2]).is_err());
        assert!(sz.decompress_field(&[]).is_err());
        let mut bad = stream.clone();
        if let Some(b) = bad.last_mut() {
            *b ^= 0xFF;
        }
        // Either an error or (if the flipped byte was padding) a valid result;
        // must not panic.
        let _ = sz.decompress_field(&bad);
    }

    #[test]
    fn forged_giant_dimensions_are_rejected_not_wrapped() {
        // ny = nx = 2^32 wraps ny*nx to 0 in a release build, which used to
        // slip past the code-count check and panic in the replay loop; the
        // checked cell count must reject it as a corrupt stream instead.
        let mut payload = Vec::new();
        payload.extend_from_slice(MAGIC);
        payload.extend_from_slice(&(1u64 << 32).to_le_bytes()); // ny
        payload.extend_from_slice(&(1u64 << 32).to_le_bytes()); // nx
        payload.extend_from_slice(&1e-3f64.to_le_bytes()); // eb
        payload.extend_from_slice(&16u32.to_le_bytes()); // block size
        payload.extend_from_slice(&32768u32.to_le_bytes()); // radius
        payload.extend_from_slice(&0u64.to_le_bytes()); // n_modes
        payload.extend_from_slice(&0u64.to_le_bytes()); // n_planes
        let huff = lcc_lossless::huffman_encode(&[]);
        payload.extend_from_slice(&(huff.len() as u64).to_le_bytes());
        payload.extend_from_slice(&huff);
        payload.extend_from_slice(&0u64.to_le_bytes()); // n_exact
        let stream = lcc_lossless::lz77_compress(&payload);
        assert!(matches!(
            SzCompressor::default().decompress_field(&stream),
            Err(CompressError::CorruptStream(_))
        ));
    }

    #[test]
    fn name_and_description() {
        let sz = SzCompressor::default();
        assert_eq!(sz.name(), "sz");
        assert!(sz.description().contains("Lorenzo"));
        let rans = SzCompressor::rans();
        assert_eq!(rans.name(), "sz-rans");
        assert!(rans.description().contains("rANS"));
        let rans8 = SzCompressor::rans8();
        assert_eq!(rans8.name(), "sz-rans8");
        assert!(rans8.description().contains("8-way"));
    }

    #[test]
    fn rans_backend_respects_bounds_and_decodes_identically() {
        // The entropy stage is lossless, so all backends must decode to
        // bit-identical fields — and every compressor instance must decode
        // every other's self-describing stream.
        let huff = SzCompressor::default();
        let rans = SzCompressor::rans();
        let rans8 = SzCompressor::rans8();
        for field in [smooth_field(80), rough_field(64, 7)] {
            for eb in [1e-4, 1e-2] {
                let a = huff.compress(&field, ErrorBound::Absolute(eb)).unwrap();
                let b = rans.compress(&field, ErrorBound::Absolute(eb)).unwrap();
                let c = rans8.compress(&field, ErrorBound::Absolute(eb)).unwrap();
                assert!(b.metrics.max_abs_error <= eb);
                assert!(c.metrics.max_abs_error <= eb);
                assert_eq!(a.reconstruction, b.reconstruction, "backends disagree at eb={eb}");
                assert_eq!(a.reconstruction, c.reconstruction, "rans8 disagrees at eb={eb}");
                assert_ne!(a.stream, b.stream, "containers must differ");
                assert_ne!(b.stream, c.stream, "rans containers must differ");
                assert!(b.stream.starts_with(RANS_MAGIC));
                assert!(c.stream.starts_with(RANS8_MAGIC));
                for decoder in [&huff, &rans, &rans8] {
                    assert_eq!(decoder.decompress_field(&a.stream).unwrap(), a.reconstruction);
                    assert_eq!(decoder.decompress_field(&b.stream).unwrap(), b.reconstruction);
                    assert_eq!(decoder.decompress_field(&c.stream).unwrap(), c.reconstruction);
                }
            }
        }
    }

    #[test]
    fn rans8_streams_reject_corruption() {
        let rans8 = SzCompressor::rans8();
        let stream = rans8.compress_field(&smooth_field(32), ErrorBound::Absolute(1e-3)).unwrap();
        assert!(rans8.decompress_field(&stream[..stream.len() / 2]).is_err());
        assert!(rans8.decompress_field(&stream[..6]).is_err());
        let mut bad = stream.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x55;
        // Must error or (if the flip landed in slack) decode cleanly — never
        // panic.
        let _ = rans8.decompress_field(&bad);
    }

    #[test]
    fn rans_streams_reject_corruption() {
        let rans = SzCompressor::rans();
        let stream = rans.compress_field(&smooth_field(32), ErrorBound::Absolute(1e-3)).unwrap();
        assert!(rans.decompress_field(&stream[..stream.len() / 2]).is_err());
        assert!(rans.decompress_field(&stream[..6]).is_err());
        // Clobber the entropy section's mode byte region; must error, never
        // panic.
        let mut bad = stream.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x55;
        let _ = rans.decompress_field(&bad);
    }
}
