//! Prediction schemes: the 2D Lorenzo predictor and the block hyper-plane
//! (regression) predictor, plus per-block predictor selection.

use lcc_grid::{Field2D, FieldView, Window};

/// Which predictor a block uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockMode {
    /// First-order Lorenzo predictor from reconstructed neighbours.
    Lorenzo,
    /// Least-squares plane fitted over the block.
    Regression,
}

/// 2D Lorenzo prediction at `(i, j)` from already-reconstructed values:
/// `f[i-1][j] + f[i][j-1] - f[i-1][j-1]`, with out-of-domain neighbours
/// treated as zero (matching the behaviour at the field boundary in SZ).
#[inline]
pub fn lorenzo_predict(recon: &Field2D, i: usize, j: usize) -> f64 {
    lorenzo_predict_flat(recon.as_slice(), recon.nx(), i, j)
}

/// [`lorenzo_predict`] over a bare row-major buffer. The reference form of
/// the predictor: the decompressor uses it (through [`lorenzo_predict`]),
/// while the encoder's specialized row loop in `lcc_sz::SzCompressor`
/// inlines the same `up + left − diag` arithmetic over split row slices —
/// change both together (the byte-identity fixtures will catch a mismatch).
#[inline]
pub fn lorenzo_predict_flat(recon: &[f64], nx: usize, i: usize, j: usize) -> f64 {
    let up = if i > 0 { recon[(i - 1) * nx + j] } else { 0.0 };
    let left = if j > 0 { recon[i * nx + j - 1] } else { 0.0 };
    let diag = if i > 0 && j > 0 { recon[(i - 1) * nx + j - 1] } else { 0.0 };
    up + left - diag
}

/// Evaluate the block plane `c0 + c1·di + c2·dj` at local offsets
/// `(di, dj)` within the block.
#[inline]
pub fn plane_predict(coeffs: &[f64; 3], di: usize, dj: usize) -> f64 {
    coeffs[0] + coeffs[1] * di as f64 + coeffs[2] * dj as f64
}

/// Fit the least-squares plane to the original values of one block.
///
/// The 3×3 normal equations have a closed form because the design depends
/// only on the block geometry (offsets `di`, `dj`), mirroring how SZ fits its
/// regression coefficients per block.
pub fn fit_block_plane(field: &FieldView<'_>, win: &Window) -> [f64; 3] {
    let h = win.height as f64;
    let w = win.width as f64;
    let n = h * w;

    // Sums over the regular grid of offsets.
    let s_i = (h - 1.0) * h / 2.0 * w; // Σ di
    let s_j = (w - 1.0) * w / 2.0 * h; // Σ dj
    let s_ii = (h - 1.0) * h * (2.0 * h - 1.0) / 6.0 * w; // Σ di²
    let s_jj = (w - 1.0) * w * (2.0 * w - 1.0) / 6.0 * h; // Σ dj²
    let s_ij = ((h - 1.0) * h / 2.0) * ((w - 1.0) * w / 2.0); // Σ di·dj

    let mut s_v = 0.0;
    let mut s_iv = 0.0;
    let mut s_jv = 0.0;
    for di in 0..win.height {
        let row = field.row(win.i0 + di);
        for dj in 0..win.width {
            let v = row[win.j0 + dj];
            s_v += v;
            s_iv += v * di as f64;
            s_jv += v * dj as f64;
        }
    }

    // Solve the symmetric 3x3 system
    // [ n    s_i   s_j  ] [c0]   [ s_v  ]
    // [ s_i  s_ii  s_ij ] [c1] = [ s_iv ]
    // [ s_j  s_ij  s_jj ] [c2]   [ s_jv ]
    let a = [[n, s_i, s_j], [s_i, s_ii, s_ij], [s_j, s_ij, s_jj]];
    let b = [s_v, s_iv, s_jv];
    solve3(a, b).unwrap_or([s_v / n, 0.0, 0.0])
}

/// Solve a 3×3 linear system with partial pivoting; `None` if singular
/// (degenerate 1×k blocks fall back to the block mean).
fn solve3(mut a: [[f64; 3]; 3], mut b: [f64; 3]) -> Option<[f64; 3]> {
    for k in 0..3 {
        // Pivot.
        let mut piv = k;
        for i in k + 1..3 {
            if a[i][k].abs() > a[piv][k].abs() {
                piv = i;
            }
        }
        if a[piv][k].abs() < 1e-12 {
            return None;
        }
        a.swap(k, piv);
        b.swap(k, piv);
        let pivot_row = a[k];
        for i in k + 1..3 {
            let f = a[i][k] / pivot_row[k];
            for (x, p) in a[i].iter_mut().zip(pivot_row).skip(k) {
                *x -= f * p;
            }
            b[i] -= f * b[k];
        }
    }
    let mut x = [0.0; 3];
    for k in (0..3).rev() {
        let mut acc = b[k];
        for j in k + 1..3 {
            acc -= a[k][j] * x[j];
        }
        x[k] = acc / a[k][k];
    }
    Some(x)
}

/// Choose the predictor for a block by comparing, on the original data, the
/// sum of absolute residuals of (a) an original-value Lorenzo pass and (b)
/// the fitted plane. This mirrors SZ's sampled predictor selection; using
/// original (not reconstructed) values for the estimate is the same
/// approximation the reference implementation makes.
pub fn select_mode(field: &FieldView<'_>, win: &Window) -> BlockMode {
    select_mode_with_plane(field, win).0
}

/// [`select_mode`] that also returns the plane it fitted for the
/// comparison, so the encoder of a regression block need not fit it twice.
/// The decision and coefficients are identical to calling [`select_mode`]
/// and [`fit_block_plane`] separately.
pub fn select_mode_with_plane(field: &FieldView<'_>, win: &Window) -> (BlockMode, [f64; 3]) {
    let plane = fit_block_plane(field, win);
    let mut lorenzo_err = 0.0;
    let mut plane_err = 0.0;
    for di in 0..win.height {
        let i = win.i0 + di;
        let row = field.row(i);
        let prev = if i > 0 { field.row(i - 1) } else { &[] as &[f64] };
        for dj in 0..win.width {
            let j = win.j0 + dj;
            let v = row[j];
            let up = if i > 0 { prev[j] } else { 0.0 };
            let left = if j > 0 { row[j - 1] } else { 0.0 };
            let diag = if i > 0 && j > 0 { prev[j - 1] } else { 0.0 };
            lorenzo_err += (v - (up + left - diag)).abs();
            plane_err += (v - plane_predict(&plane, di, dj)).abs();
        }
    }
    let mode = if plane_err < lorenzo_err { BlockMode::Regression } else { BlockMode::Lorenzo };
    (mode, plane)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(i0: usize, j0: usize, h: usize, w: usize) -> Window {
        Window { i0, j0, height: h, width: w }
    }

    #[test]
    fn lorenzo_is_exact_on_planes() {
        // For f(i,j) = a + b i + c j the Lorenzo prediction is exact away from
        // the boundary.
        let f = Field2D::from_fn(16, 16, |i, j| 2.0 + 0.5 * i as f64 - 0.25 * j as f64);
        for i in 1..16 {
            for j in 1..16 {
                assert!((lorenzo_predict(&f, i, j) - f.get(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn lorenzo_boundary_uses_zeros() {
        let f = Field2D::filled(4, 4, 5.0);
        assert_eq!(lorenzo_predict(&f, 0, 0), 0.0);
        assert_eq!(lorenzo_predict(&f, 0, 2), 5.0);
        assert_eq!(lorenzo_predict(&f, 2, 0), 5.0);
        assert_eq!(lorenzo_predict(&f, 2, 2), 5.0);
    }

    #[test]
    fn plane_fit_recovers_exact_plane() {
        let f = Field2D::from_fn(20, 20, |i, j| 1.0 + 0.3 * i as f64 - 0.7 * j as f64);
        let w = window(2, 3, 16, 16);
        let c = fit_block_plane(&f.view(), &w);
        // The plane is expressed in local offsets, so c0 absorbs the corner value.
        assert!((c[0] - f.get(2, 3)).abs() < 1e-9);
        assert!((c[1] - 0.3).abs() < 1e-9);
        assert!((c[2] + 0.7).abs() < 1e-9);
        for di in 0..16 {
            for dj in 0..16 {
                assert!((plane_predict(&c, di, dj) - f.get(2 + di, 3 + dj)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn plane_fit_on_degenerate_row_block_falls_back_gracefully() {
        let f = Field2D::from_fn(1, 8, |_, j| j as f64);
        let w = window(0, 0, 1, 8);
        let c = fit_block_plane(&f.view(), &w);
        // A 1-row block has no information about the i-slope; predictions must
        // still be finite.
        for dj in 0..8 {
            assert!(plane_predict(&c, 0, dj).is_finite());
        }
    }

    #[test]
    fn selection_prefers_regression_on_linear_trend_with_noise_free_data() {
        // A pure plane: both are exact, Lorenzo wins ties; add curvature so
        // the plane degrades and Lorenzo is chosen.
        let plane = Field2D::from_fn(32, 32, |i, j| 3.0 * i as f64 + 2.0 * j as f64);
        let w = window(8, 8, 16, 16);
        assert_eq!(select_mode(&plane.view(), &w), BlockMode::Lorenzo);

        // A noisy field favours the regression predictor because Lorenzo
        // amplifies point noise (three noisy neighbours per prediction).
        let mut state = 1234567u64;
        let noisy = Field2D::from_fn(32, 32, |i, j| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            0.1 * (i as f64) + 0.05 * (j as f64) + (state % 1000) as f64 / 1000.0
        });
        assert_eq!(select_mode(&noisy.view(), &w), BlockMode::Regression);
    }

    #[test]
    fn solve3_singular_returns_none() {
        let a = [[1.0, 2.0, 3.0], [2.0, 4.0, 6.0], [0.0, 0.0, 1.0]];
        assert!(solve3(a, [1.0, 2.0, 3.0]).is_none());
    }
}
