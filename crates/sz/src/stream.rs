//! Little-endian stream serialization helpers shared by the compressor's
//! encoder and decoder.

use lcc_pressio::CompressError;

/// Append-only little-endian byte stream writer.
#[derive(Debug, Default, Clone)]
pub struct StreamWriter {
    buf: Vec<u8>,
}

impl StreamWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        StreamWriter { buf: Vec::new() }
    }

    /// Append raw bytes.
    pub fn bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Forget everything written but keep the allocation (scratch reuse).
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Borrow the bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Finish and return the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor-based reader matching [`StreamWriter`].
#[derive(Debug, Clone)]
pub struct StreamReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> StreamReader<'a> {
    /// Create a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        StreamReader { buf, pos: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Read `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], CompressError> {
        if self.remaining() < n {
            return Err(CompressError::CorruptStream(format!(
                "need {n} bytes, {} remaining",
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> Result<u8, CompressError> {
        Ok(self.bytes(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CompressError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("slice length checked")))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CompressError> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("slice length checked")))
    }

    /// Read a little-endian `f64`.
    pub fn f64(&mut self) -> Result<f64, CompressError> {
        let b = self.bytes(8)?;
        Ok(f64::from_le_bytes(b.try_into().expect("slice length checked")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clear_keeps_reusing_the_buffer() {
        let mut w = StreamWriter::new();
        w.u64(0xFFFF_FFFF_FFFF_FFFF);
        w.clear();
        assert!(w.is_empty());
        w.u8(0x42);
        assert_eq!(w.as_bytes(), &[0x42]);
    }

    #[test]
    fn roundtrip_all_types() {
        let mut w = StreamWriter::new();
        assert!(w.is_empty());
        w.u8(0xAB);
        w.u32(0xDEADBEEF);
        w.u64(u64::MAX - 3);
        w.f64(-123.456e-7);
        w.bytes(b"tail");
        assert_eq!(w.len(), 1 + 4 + 8 + 8 + 4);

        let bytes = w.into_bytes();
        let mut r = StreamReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u32().unwrap(), 0xDEADBEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.f64().unwrap(), -123.456e-7);
        assert_eq!(r.bytes(4).unwrap(), b"tail");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn reading_past_the_end_is_an_error() {
        let bytes = [1u8, 2, 3];
        let mut r = StreamReader::new(&bytes);
        assert!(r.u32().is_err());
        assert_eq!(r.u8().unwrap(), 1);
        assert!(r.bytes(5).is_err());
        assert_eq!(r.bytes(2).unwrap(), &[2, 3]);
        assert!(r.u8().is_err());
    }

    #[test]
    fn nan_and_infinity_roundtrip_bitwise() {
        let mut w = StreamWriter::new();
        w.f64(f64::INFINITY);
        w.f64(f64::NEG_INFINITY);
        let bytes = w.into_bytes();
        let mut r = StreamReader::new(&bytes);
        assert_eq!(r.f64().unwrap(), f64::INFINITY);
        assert_eq!(r.f64().unwrap(), f64::NEG_INFINITY);
    }
}
