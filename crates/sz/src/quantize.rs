//! Linear-scale quantization of prediction residuals.

use lcc_lossless::dispatch::SimdLevel;

/// Code reserved for values that cannot be represented within the
/// quantization radius and are therefore stored exactly.
pub const UNPREDICTABLE: u32 = 0;

/// Linear-scale quantizer with bin width `2ε` centred on the prediction.
///
/// A residual `r = value − prediction` maps to the integer
/// `code = round(r / 2ε)`; the reconstructed value `prediction + code·2ε`
/// then differs from the original by at most `ε`. Codes are shifted by the
/// radius so they are non-negative `u32` symbols for the Huffman stage, with
/// `0` reserved for "unpredictable".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantizer {
    error_bound: f64,
    radius: u32,
}

impl Quantizer {
    /// Create a quantizer for the given absolute error bound and radius.
    ///
    /// # Panics
    /// Panics if the bound is not positive/finite or the radius is < 2.
    pub fn new(error_bound: f64, radius: u32) -> Self {
        assert!(error_bound.is_finite() && error_bound > 0.0, "error bound must be positive");
        assert!(radius >= 2, "radius must be at least 2");
        Quantizer { error_bound, radius }
    }

    /// The absolute error bound.
    pub fn error_bound(&self) -> f64 {
        self.error_bound
    }

    /// The quantization radius.
    pub fn radius(&self) -> u32 {
        self.radius
    }

    /// Quantize `value` against `prediction`.
    ///
    /// Returns `Some((code, reconstructed))` when the residual fits in the
    /// radius **and** the reconstruction actually satisfies the bound
    /// (guarding against floating-point round-off on huge magnitudes);
    /// `None` means the value must be stored exactly.
    #[inline]
    pub fn quantize(&self, value: f64, prediction: f64) -> Option<(u32, f64)> {
        let diff = value - prediction;
        let scaled = diff / (2.0 * self.error_bound);
        if !scaled.is_finite() || scaled.abs() >= (self.radius - 1) as f64 {
            return None;
        }
        let q = scaled.round() as i64;
        let reconstructed = prediction + q as f64 * 2.0 * self.error_bound;
        if (reconstructed - value).abs() > self.error_bound {
            return None;
        }
        // Shift into the symbol alphabet: code 0 is reserved.
        let code = (q + i64::from(self.radius)) as u32;
        Some((code, reconstructed))
    }

    /// Invert [`Quantizer::quantize`] for a non-zero code.
    #[inline]
    pub fn dequantize(&self, code: u32, prediction: f64) -> f64 {
        debug_assert_ne!(code, UNPREDICTABLE, "unpredictable codes carry no quantized value");
        let q = i64::from(code) - i64::from(self.radius);
        prediction + q as f64 * 2.0 * self.error_bound
    }
}

/// Predict-and-quantize one row of a regression (plane-predicted) block:
/// `prediction = (c0 + c1·di) + c2·dj` per cell, then [`Quantizer::quantize`]
/// into the code/exact streams and the reconstruction row. This is the
/// independent-per-cell half of the SZ encode hot loop (the Lorenzo
/// recurrence is serial through the just-written neighbour and stays
/// scalar), so it vectorizes: the AVX2 tier runs 4 f64 lanes per iteration
/// with the exact scalar rounding sequence — `round` emulated as
/// truncate-plus-half-test, reconstruction multiplied in the scalar's
/// `(q·2)·ε` order — so codes, exact values, and reconstructions are
/// bit-identical at every tier. Chunks with any unpredictable lane replay
/// those four cells through the scalar quantizer to keep the exact-stream
/// order.
// Sanctioned `unsafe_code` waiver (see `lcc_lossless::dispatch`): the shim
// holds the feature-detection guard that makes the AVX2 kernel legal.
#[allow(unsafe_code)]
#[allow(clippy::too_many_arguments)]
pub fn quantize_plane_row_at(
    level: SimdLevel,
    quantizer: &Quantizer,
    plane: &[f64; 3],
    di: usize,
    orig: &[f64],
    recon: &mut [f64],
    codes: &mut Vec<u32>,
    exact: &mut Vec<f64>,
) {
    assert_eq!(orig.len(), recon.len(), "row slices must align");
    let base = plane[0] + plane[1] * di as f64;
    let c2 = plane[2];
    let mut dj = 0usize;
    #[cfg(target_arch = "x86_64")]
    if level >= SimdLevel::Avx2 && orig.len() >= 4 && quantizer.radius <= (1 << 30) {
        // SAFETY: AVX2 presence is guaranteed by dispatch; the slice lengths
        // were just asserted equal, and the radius cap keeps the vectorized
        // `q + radius` inside i32.
        dj = unsafe { simd::quantize_plane_chunks(quantizer, base, c2, orig, recon, codes, exact) };
    }
    let _ = level;
    for j in dj..orig.len() {
        let prediction = base + c2 * j as f64;
        match quantizer.quantize(orig[j], prediction) {
            Some((code, reconstructed)) => {
                codes.push(code);
                recon[j] = reconstructed;
            }
            None => {
                codes.push(UNPREDICTABLE);
                exact.push(orig[j]);
                recon[j] = orig[j];
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod simd {
    // Sanctioned `unsafe_code` waiver (see `lcc_lossless::dispatch`):
    // `core::arch` intrinsics are unsafe by definition; the caller holds the
    // feature guard and the bit-identity suite pins scalar equivalence.
    #![allow(unsafe_code)]

    use super::{Quantizer, UNPREDICTABLE};
    use std::arch::x86_64::*;

    /// Quantize `orig.len() & !3` cells in 4-lane chunks; returns the number
    /// of cells handled. Every chunk either passes both predictability tests
    /// in all four lanes (vector store of codes and reconstructions) or is
    /// replayed through the scalar quantizer cell by cell, so the emitted
    /// streams match the scalar loop exactly.
    ///
    /// # Safety
    /// Requires AVX2, `recon.len() == orig.len()`, and
    /// `quantizer.radius ≤ 2^30`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn quantize_plane_chunks(
        quantizer: &Quantizer,
        base: f64,
        c2: f64,
        orig: &[f64],
        recon: &mut [f64],
        codes: &mut Vec<u32>,
        exact: &mut Vec<f64>,
    ) -> usize {
        let n = orig.len() & !3;
        let eb = quantizer.error_bound;
        let radius = quantizer.radius;
        let basev = _mm256_set1_pd(base);
        let c2v = _mm256_set1_pd(c2);
        let two_ebv = _mm256_set1_pd(2.0 * eb);
        let ebv = _mm256_set1_pd(eb);
        let twov = _mm256_set1_pd(2.0);
        let radv = _mm256_set1_pd((radius - 1) as f64);
        let halfv = _mm256_set1_pd(0.5);
        let onev = _mm256_set1_pd(1.0);
        let sign_mask = _mm256_set1_pd(-0.0);
        let radius_i = _mm_set1_epi32(radius as i32);
        // One code per cell over the whole row: reserving up front lets the
        // all-predictable path store four codes with one 128-bit write.
        codes.reserve(orig.len());
        let mut j = 0usize;
        while j < n {
            let djv = _mm256_set_pd((j + 3) as f64, (j + 2) as f64, (j + 1) as f64, j as f64);
            let predv = _mm256_add_pd(basev, _mm256_mul_pd(c2v, djv));
            let valv = _mm256_loadu_pd(orig.as_ptr().add(j));
            let scaledv = _mm256_div_pd(_mm256_sub_pd(valv, predv), two_ebv);
            // Predictability test 1: |scaled| < radius − 1. The ordered
            // compare is false for NaN/±inf scaled, matching the scalar
            // `!is_finite || abs >= …` rejection in one predicate.
            let absv = _mm256_andnot_pd(sign_mask, scaledv);
            let in_radius = _mm256_cmp_pd::<_CMP_LT_OQ>(absv, radv);
            // `f64::round` (half away from zero), exactly: truncate, then
            // add ±1 when the discarded fraction reaches one half. The
            // subtraction is exact (|scaled| < 2^30 here), so the emulation
            // agrees with the scalar rounding on every input, ties included.
            let t = _mm256_round_pd::<{ _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC }>(scaledv);
            let frac = _mm256_sub_pd(scaledv, t);
            let absfrac = _mm256_andnot_pd(sign_mask, frac);
            let ge_half = _mm256_cmp_pd::<_CMP_GE_OQ>(absfrac, halfv);
            let signed_one = _mm256_or_pd(onev, _mm256_and_pd(scaledv, sign_mask));
            let qv = _mm256_add_pd(t, _mm256_and_pd(ge_half, signed_one));
            // Reconstruction in the scalar's operation order: (q · 2) · ε.
            let reconv = _mm256_add_pd(predv, _mm256_mul_pd(_mm256_mul_pd(qv, twov), ebv));
            // Predictability test 2: reject when |recon − value| > ε, with
            // the same NaN behaviour as the scalar `>` (NaN never rejects —
            // the ordered GT is false for NaN).
            let err = _mm256_andnot_pd(sign_mask, _mm256_sub_pd(reconv, valv));
            let reject = _mm256_cmp_pd::<_CMP_GT_OQ>(err, ebv);
            let ok = _mm256_andnot_pd(reject, in_radius);
            if _mm256_movemask_pd(ok) == 0xF {
                _mm256_storeu_pd(recon.as_mut_ptr().add(j), reconv);
                // Integral |q| ≤ radius − 1 < 2^30: the narrowing convert is
                // exact and `q + radius` stays inside i32.
                let codes4 = _mm_add_epi32(_mm256_cvtpd_epi32(qv), radius_i);
                let len = codes.len();
                debug_assert!(codes.capacity() - len >= 4);
                _mm_storeu_si128(codes.as_mut_ptr().add(len) as *mut __m128i, codes4);
                codes.set_len(len + 4);
            } else {
                for k in j..j + 4 {
                    let prediction = base + c2 * k as f64;
                    match quantizer.quantize(orig[k], prediction) {
                        Some((code, reconstructed)) => {
                            codes.push(code);
                            recon[k] = reconstructed;
                        }
                        None => {
                            codes.push(UNPREDICTABLE);
                            exact.push(orig[k]);
                            recon[k] = orig[k];
                        }
                    }
                }
            }
            j += 4;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_respects_bound_for_many_residuals() {
        let q = Quantizer::new(1e-3, 32768);
        for k in -2000..2000 {
            let prediction = 10.0;
            let value = prediction + k as f64 * 1.3e-4;
            let (code, recon) = q.quantize(value, prediction).expect("in range");
            assert_ne!(code, UNPREDICTABLE);
            assert!((recon - value).abs() <= 1e-3 + 1e-15);
            assert_eq!(q.dequantize(code, prediction), recon);
        }
    }

    #[test]
    fn zero_residual_maps_to_radius_code() {
        let q = Quantizer::new(1e-2, 100);
        let (code, recon) = q.quantize(5.0, 5.0).unwrap();
        assert_eq!(code, 100);
        assert_eq!(recon, 5.0);
    }

    #[test]
    fn out_of_radius_residual_is_unpredictable() {
        let q = Quantizer::new(1e-6, 16);
        assert!(q.quantize(1.0, 0.0).is_none());
        // Inside the radius it works.
        assert!(q.quantize(1e-6 * 10.0, 0.0).is_some());
    }

    #[test]
    fn non_finite_scaled_residual_is_unpredictable() {
        let q = Quantizer::new(1e-300, 32768);
        assert!(q.quantize(1e300, -1e300).is_none());
    }

    #[test]
    fn roundtrip_through_codes() {
        let q = Quantizer::new(5e-4, 4096);
        let prediction = -3.25;
        for value in [-3.25, -3.2501, -3.0, -3.3, -2.9] {
            if let Some((code, recon)) = q.quantize(value, prediction) {
                assert_eq!(q.dequantize(code, prediction), recon);
                assert!((recon - value).abs() <= 5e-4 * 1.0000001);
            }
        }
    }

    #[test]
    fn plane_row_kernel_matches_scalar_at_every_level() {
        use lcc_lossless::dispatch::supported_levels;
        let quantizer = Quantizer::new(1e-3, 32768);
        let plane = [2.5f64, 0.125, -0.0625];
        let mut state = 0x243F_6A88u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state as f64 / u64::MAX as f64
        };
        // Rows mixing predictable cells, near-tie residuals (the round
        // emulation's hard case), and unpredictable spikes; lengths cover
        // the chunk boundary and the scalar tail.
        for len in [1usize, 3, 4, 5, 8, 63, 64, 257] {
            for di in [0usize, 7] {
                let orig: Vec<f64> = (0..len)
                    .map(|j| {
                        let pred = (plane[0] + plane[1] * di as f64) + plane[2] * j as f64;
                        match j % 7 {
                            0 => pred + (rng() - 0.5) * 0.04,
                            1 => pred + ((j / 7) as f64) * 1e-3, // exact half-bin ties
                            2 => pred + 1e6,                     // unpredictable spike
                            _ => pred + (rng() - 0.5) * 2e-3,
                        }
                    })
                    .collect();
                let mut recon_ref = vec![0.0f64; len];
                let mut codes_ref = Vec::new();
                let mut exact_ref = Vec::new();
                quantize_plane_row_at(
                    SimdLevel::Scalar,
                    &quantizer,
                    &plane,
                    di,
                    &orig,
                    &mut recon_ref,
                    &mut codes_ref,
                    &mut exact_ref,
                );
                for &level in supported_levels() {
                    let mut recon = vec![0.0f64; len];
                    let mut codes = Vec::new();
                    let mut exact = Vec::new();
                    quantize_plane_row_at(
                        level, &quantizer, &plane, di, &orig, &mut recon, &mut codes, &mut exact,
                    );
                    assert_eq!(codes, codes_ref, "codes len={len} di={di} level={level:?}");
                    assert_eq!(exact, exact_ref, "exact len={len} di={di} level={level:?}");
                    let bits: Vec<u64> = recon.iter().map(|v| v.to_bits()).collect();
                    let bits_ref: Vec<u64> = recon_ref.iter().map(|v| v.to_bits()).collect();
                    assert_eq!(bits, bits_ref, "recon len={len} di={di} level={level:?}");
                }
            }
        }
    }

    #[test]
    fn accessors() {
        let q = Quantizer::new(1e-4, 64);
        assert_eq!(q.error_bound(), 1e-4);
        assert_eq!(q.radius(), 64);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bound_panics() {
        let _ = Quantizer::new(0.0, 64);
    }

    #[test]
    #[should_panic(expected = "radius")]
    fn tiny_radius_panics() {
        let _ = Quantizer::new(1e-3, 1);
    }
}
