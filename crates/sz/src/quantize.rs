//! Linear-scale quantization of prediction residuals.

/// Code reserved for values that cannot be represented within the
/// quantization radius and are therefore stored exactly.
pub const UNPREDICTABLE: u32 = 0;

/// Linear-scale quantizer with bin width `2ε` centred on the prediction.
///
/// A residual `r = value − prediction` maps to the integer
/// `code = round(r / 2ε)`; the reconstructed value `prediction + code·2ε`
/// then differs from the original by at most `ε`. Codes are shifted by the
/// radius so they are non-negative `u32` symbols for the Huffman stage, with
/// `0` reserved for "unpredictable".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantizer {
    error_bound: f64,
    radius: u32,
}

impl Quantizer {
    /// Create a quantizer for the given absolute error bound and radius.
    ///
    /// # Panics
    /// Panics if the bound is not positive/finite or the radius is < 2.
    pub fn new(error_bound: f64, radius: u32) -> Self {
        assert!(error_bound.is_finite() && error_bound > 0.0, "error bound must be positive");
        assert!(radius >= 2, "radius must be at least 2");
        Quantizer { error_bound, radius }
    }

    /// The absolute error bound.
    pub fn error_bound(&self) -> f64 {
        self.error_bound
    }

    /// The quantization radius.
    pub fn radius(&self) -> u32 {
        self.radius
    }

    /// Quantize `value` against `prediction`.
    ///
    /// Returns `Some((code, reconstructed))` when the residual fits in the
    /// radius **and** the reconstruction actually satisfies the bound
    /// (guarding against floating-point round-off on huge magnitudes);
    /// `None` means the value must be stored exactly.
    #[inline]
    pub fn quantize(&self, value: f64, prediction: f64) -> Option<(u32, f64)> {
        let diff = value - prediction;
        let scaled = diff / (2.0 * self.error_bound);
        if !scaled.is_finite() || scaled.abs() >= (self.radius - 1) as f64 {
            return None;
        }
        let q = scaled.round() as i64;
        let reconstructed = prediction + q as f64 * 2.0 * self.error_bound;
        if (reconstructed - value).abs() > self.error_bound {
            return None;
        }
        // Shift into the symbol alphabet: code 0 is reserved.
        let code = (q + i64::from(self.radius)) as u32;
        Some((code, reconstructed))
    }

    /// Invert [`Quantizer::quantize`] for a non-zero code.
    #[inline]
    pub fn dequantize(&self, code: u32, prediction: f64) -> f64 {
        debug_assert_ne!(code, UNPREDICTABLE, "unpredictable codes carry no quantized value");
        let q = i64::from(code) - i64::from(self.radius);
        prediction + q as f64 * 2.0 * self.error_bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_respects_bound_for_many_residuals() {
        let q = Quantizer::new(1e-3, 32768);
        for k in -2000..2000 {
            let prediction = 10.0;
            let value = prediction + k as f64 * 1.3e-4;
            let (code, recon) = q.quantize(value, prediction).expect("in range");
            assert_ne!(code, UNPREDICTABLE);
            assert!((recon - value).abs() <= 1e-3 + 1e-15);
            assert_eq!(q.dequantize(code, prediction), recon);
        }
    }

    #[test]
    fn zero_residual_maps_to_radius_code() {
        let q = Quantizer::new(1e-2, 100);
        let (code, recon) = q.quantize(5.0, 5.0).unwrap();
        assert_eq!(code, 100);
        assert_eq!(recon, 5.0);
    }

    #[test]
    fn out_of_radius_residual_is_unpredictable() {
        let q = Quantizer::new(1e-6, 16);
        assert!(q.quantize(1.0, 0.0).is_none());
        // Inside the radius it works.
        assert!(q.quantize(1e-6 * 10.0, 0.0).is_some());
    }

    #[test]
    fn non_finite_scaled_residual_is_unpredictable() {
        let q = Quantizer::new(1e-300, 32768);
        assert!(q.quantize(1e300, -1e300).is_none());
    }

    #[test]
    fn roundtrip_through_codes() {
        let q = Quantizer::new(5e-4, 4096);
        let prediction = -3.25;
        for value in [-3.25, -3.2501, -3.0, -3.3, -2.9] {
            if let Some((code, recon)) = q.quantize(value, prediction) {
                assert_eq!(q.dequantize(code, prediction), recon);
                assert!((recon - value).abs() <= 5e-4 * 1.0000001);
            }
        }
    }

    #[test]
    fn accessors() {
        let q = Quantizer::new(1e-4, 64);
        assert_eq!(q.error_bound(), 1e-4);
        assert_eq!(q.radius(), 64);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bound_panics() {
        let _ = Quantizer::new(0.0, 64);
    }

    #[test]
    #[should_panic(expected = "radius")]
    fn tiny_radius_panics() {
        let _ = Quantizer::new(1e-3, 1);
    }
}
