//! Composable byte codecs and the Huffman→LZ77 pipeline used as the "Zstd"
//! stage of the lossy compressors.

use crate::rans::RansScratch;
use crate::{
    lz77_compress, lz77_decompress, rans_decode_bytes_with, rans_encode_bytes_with, read_varint,
    write_varint, CodecError,
};
use bytes::{BufMut, BytesMut};

/// The entropy-coder choice of a compressor's lossless stage — the
/// ratio-vs-throughput ablation axis. Every stream self-describes its
/// backend (a tag or magic variant), so any decoder accepts both; the enum
/// only selects what the *encoder* emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EntropyBackend {
    /// Canonical Huffman (plus the historical LZ77 pass where the codec
    /// applies one) — the default; streams are byte-identical to every
    /// release before the backend existed.
    #[default]
    Huffman,
    /// 2-way interleaved rANS ([`crate::rans`]): fractional-bit coding from
    /// 12-bit normalized tables, skipping the follow-up LZ77 pass (rANS
    /// output is already near the entropy, so a second pass buys ~nothing
    /// while costing most of the encode time).
    Rans,
    /// 8-way interleaved rANS ([`crate::rans::rans8_encode`]): the same
    /// tables and ratio as [`EntropyBackend::Rans`] (±24 flush bytes plus a
    /// lane-length header), but eight independent decode chains, so the
    /// dispatched decoder runs wide — the throughput-first backend.
    Rans8,
}

impl EntropyBackend {
    /// Short name used in compressor registry keys (`sz` vs `sz-rans` vs
    /// `sz-rans8`).
    pub fn name(self) -> &'static str {
        match self {
            EntropyBackend::Huffman => "huffman",
            EntropyBackend::Rans => "rans",
            EntropyBackend::Rans8 => "rans8",
        }
    }
}

/// A reversible byte-stream codec.
pub trait ByteCodec {
    /// Human-readable codec name (used in compressor self-descriptions).
    fn name(&self) -> &'static str;

    /// Compress `input` into a self-describing byte stream.
    fn encode(&self, input: &[u8]) -> Vec<u8>;

    /// Invert [`ByteCodec::encode`].
    fn decode(&self, input: &[u8]) -> Result<Vec<u8>, CodecError>;
}

/// Identity codec — useful as an ablation baseline ("no lossless stage").
#[derive(Debug, Clone, Copy, Default)]
pub struct RawCodec;

impl ByteCodec for RawCodec {
    fn name(&self) -> &'static str {
        "raw"
    }

    fn encode(&self, input: &[u8]) -> Vec<u8> {
        input.to_vec()
    }

    fn decode(&self, input: &[u8]) -> Result<Vec<u8>, CodecError> {
        Ok(input.to_vec())
    }
}

/// Byte-level Huffman followed by LZ77 — the stand-in for Zstd.
///
/// The byte-Huffman stage uses the `u32` symbol coder from [`crate::huffman`]
/// over byte values; LZ77 then removes longer-range repetition from the
/// Huffman output. The encoder keeps whichever of {raw, huffman, huffman+lz}
/// is smallest and records the choice in a one-byte header, so the pipeline
/// never expands pathological inputs by more than one byte plus the length
/// varint.
#[derive(Debug, Clone, Copy, Default)]
pub struct HuffLzCodec;

const MODE_RAW: u8 = 0;
const MODE_HUFF: u8 = 1;
const MODE_HUFF_LZ: u8 = 2;

impl ByteCodec for HuffLzCodec {
    fn name(&self) -> &'static str {
        "huffman+lz77"
    }

    fn encode(&self, input: &[u8]) -> Vec<u8> {
        let symbols: Vec<u32> = input.iter().map(|&b| u32::from(b)).collect();
        let huff = crate::huffman_encode(&symbols);
        let huff_lz = lz77_compress(&huff);

        let (mode, payload): (u8, &[u8]) =
            if input.len() <= huff.len() && input.len() <= huff_lz.len() {
                (MODE_RAW, input)
            } else if huff.len() <= huff_lz.len() {
                (MODE_HUFF, &huff)
            } else {
                (MODE_HUFF_LZ, &huff_lz)
            };

        let mut out = BytesMut::with_capacity(payload.len() + 10);
        out.put_u8(mode);
        let mut len_prefix = Vec::new();
        write_varint(&mut len_prefix, payload.len() as u64);
        out.put_slice(&len_prefix);
        out.put_slice(payload);
        out.to_vec()
    }

    fn decode(&self, input: &[u8]) -> Result<Vec<u8>, CodecError> {
        let (mode, payload) = split_mode_payload(input)?;
        match mode {
            MODE_RAW => Ok(payload.to_vec()),
            MODE_HUFF => {
                let (symbols, _) = crate::huffman_decode(payload)?;
                symbols_to_bytes(&symbols)
            }
            MODE_HUFF_LZ => {
                let huff = lz77_decompress(payload)?;
                let (symbols, _) = crate::huffman_decode(&huff)?;
                symbols_to_bytes(&symbols)
            }
            other => Err(CodecError::Corrupt(format!("unknown pipeline mode {other}"))),
        }
    }
}

/// Byte-level interleaved rANS behind the same raw-fallback header as
/// [`HuffLzCodec`] — the [`EntropyBackend::Rans`] pipeline. The encoder
/// keeps whichever of {raw, rANS} is smaller, so pathological inputs never
/// expand by more than the header.
#[derive(Debug, Clone, Copy, Default)]
pub struct RansCodec;

const MODE_RANS: u8 = 3;

impl ByteCodec for RansCodec {
    fn name(&self) -> &'static str {
        "rans"
    }

    fn encode(&self, input: &[u8]) -> Vec<u8> {
        let mut rans = Vec::new();
        rans_encode_bytes_with(&mut RansScratch::new(), input, &mut rans);
        let (mode, payload): (u8, &[u8]) =
            if input.len() <= rans.len() { (MODE_RAW, input) } else { (MODE_RANS, &rans) };
        let mut out = BytesMut::with_capacity(payload.len() + 10);
        out.put_u8(mode);
        let mut len_prefix = Vec::new();
        write_varint(&mut len_prefix, payload.len() as u64);
        out.put_slice(&len_prefix);
        out.put_slice(payload);
        out.to_vec()
    }

    fn decode(&self, input: &[u8]) -> Result<Vec<u8>, CodecError> {
        let (mode, payload) = split_mode_payload(input)?;
        match mode {
            MODE_RAW => Ok(payload.to_vec()),
            MODE_RANS => {
                let mut out = Vec::new();
                rans_decode_bytes_with(&mut RansScratch::new(), payload, &mut out)?;
                Ok(out)
            }
            other => Err(CodecError::Corrupt(format!("unknown pipeline mode {other}"))),
        }
    }
}

/// Parse the `mode | varint len | payload` framing shared by the pipeline
/// codecs.
fn split_mode_payload(input: &[u8]) -> Result<(u8, &[u8]), CodecError> {
    if input.is_empty() {
        return Err(CodecError::UnexpectedEof);
    }
    let mode = input[0];
    let (len, used) = read_varint(&input[1..])?;
    let start = 1 + used;
    let end = start + len as usize;
    if input.len() < end {
        return Err(CodecError::UnexpectedEof);
    }
    Ok((mode, &input[start..end]))
}

fn symbols_to_bytes(symbols: &[u32]) -> Result<Vec<u8>, CodecError> {
    symbols
        .iter()
        .map(|&s| {
            u8::try_from(s).map_err(|_| CodecError::Corrupt(format!("symbol {s} is not a byte")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<C: ByteCodec>(codec: &C, data: &[u8]) -> usize {
        let enc = codec.encode(data);
        let dec = codec.decode(&enc).unwrap();
        assert_eq!(dec, data);
        enc.len()
    }

    #[test]
    fn raw_codec_is_identity() {
        let c = RawCodec;
        assert_eq!(c.name(), "raw");
        let data = b"any bytes at all";
        assert_eq!(c.encode(data), data.to_vec());
        assert_eq!(roundtrip(&c, data), data.len());
    }

    #[test]
    fn hufflz_roundtrips_various_inputs() {
        let c = HuffLzCodec;
        assert_eq!(c.name(), "huffman+lz77");
        roundtrip(&c, b"");
        roundtrip(&c, b"a");
        roundtrip(&c, b"abcabcabcabcabc");
        let zeros = vec![0u8; 50_000];
        let n = roundtrip(&c, &zeros);
        assert!(n < 200, "zeros compressed to {n}");
    }

    #[test]
    fn hufflz_handles_incompressible_without_blowup() {
        let c = HuffLzCodec;
        let mut state = 88172645463325252u64;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state & 0xFF) as u8
            })
            .collect();
        let n = roundtrip(&c, &data);
        assert!(n <= data.len() + 16, "incompressible data expanded to {n}");
    }

    #[test]
    fn hufflz_compresses_quantization_like_data() {
        // Mostly a single byte value with occasional excursions: the typical
        // shape of serialized quantization codes on smooth fields.
        let mut data = Vec::new();
        for i in 0..20_000usize {
            if i % 97 == 0 {
                data.push((i % 251) as u8);
            } else {
                data.push(128);
            }
        }
        let c = HuffLzCodec;
        let n = roundtrip(&c, &data);
        assert!(n < data.len() / 4, "skewed data compressed to only {n} of {}", data.len());
    }

    #[test]
    fn entropy_backend_default_and_names() {
        assert_eq!(EntropyBackend::default(), EntropyBackend::Huffman);
        assert_eq!(EntropyBackend::Huffman.name(), "huffman");
        assert_eq!(EntropyBackend::Rans.name(), "rans");
        assert_eq!(EntropyBackend::Rans8.name(), "rans8");
    }

    #[test]
    fn rans_codec_roundtrips_various_inputs() {
        let c = RansCodec;
        assert_eq!(c.name(), "rans");
        roundtrip(&c, b"");
        roundtrip(&c, b"a");
        roundtrip(&c, b"abcabcabcabcabc");
        let zeros = vec![0u8; 50_000];
        let n = roundtrip(&c, &zeros);
        assert!(n < 64, "zeros compressed to {n}");
    }

    #[test]
    fn rans_codec_never_expands_past_the_header() {
        let c = RansCodec;
        let mut state = 88172645463325252u64;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state & 0xFF) as u8
            })
            .collect();
        let n = roundtrip(&c, &data);
        assert!(n <= data.len() + 16, "incompressible data expanded to {n}");
    }

    #[test]
    fn rans_codec_rejects_corruption() {
        let c = RansCodec;
        let enc = c.encode(b"hello hello hello hello hello");
        assert!(c.decode(&[]).is_err());
        assert!(c.decode(&enc[..enc.len() - 1]).is_err());
        let mut bad = enc.clone();
        bad[0] = 9; // unknown mode
        assert!(c.decode(&bad).is_err());
    }

    #[test]
    fn decode_rejects_corruption() {
        let c = HuffLzCodec;
        let enc = c.encode(b"hello hello hello hello hello");
        assert!(c.decode(&[]).is_err());
        assert!(c.decode(&enc[..enc.len() - 1]).is_err());
        let mut bad = enc.clone();
        bad[0] = 9; // unknown mode
        assert!(c.decode(&bad).is_err());
    }
}
