//! Greedy hash-chain LZ77 with a byte-oriented token format.
//!
//! This plays the role Zstd plays behind SZ/MGARD: it removes repeated byte
//! patterns left over after entropy coding of quantization codes (long runs
//! of identical codes turn into highly repetitive Huffman output only when
//! codes straddle byte boundaries irregularly, and exact-stored IEEE doubles
//! often share exponent/sign bytes).
//!
//! Token stream format (after a varint original length):
//! * literal run: `0x00, varint len, len raw bytes`
//! * match: `0x01, varint distance, varint length`
//!
//! Greedy matching with a 3-byte hash head + chained previous positions,
//! bounded chain walk. Window size 64 KiB, minimum match length 4.
//!
//! The matcher state (hash heads + chain links) lives in a caller-owned
//! [`CodecScratch`](crate::CodecScratch) when driven through
//! [`lz77_compress_with`], so repeated compressions reuse one arena instead
//! of allocating ~`5 × input` bytes of chain state per call. Match
//! candidates are compared eight bytes at a time; the greedy decisions — and
//! therefore the emitted token stream — are identical to the historical
//! byte-at-a-time encoder (pinned by `tests/bit_identity.rs`).

use crate::dispatch::{simd_level, SimdLevel};
use crate::scratch::{CodecScratch, CHAIN_NIL};
use crate::{read_varint, write_varint, CodecError};

const WINDOW: usize = 1 << 16;
const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 1 << 12;
const MAX_CHAIN: usize = 64;
const HASH_BITS: u32 = 15;

#[inline]
fn hash3(bytes: &[u8]) -> usize {
    let h = (u32::from(bytes[0]) << 16) | (u32::from(bytes[1]) << 8) | u32::from(bytes[2]);
    ((h.wrapping_mul(2654435761)) >> (32 - HASH_BITS)) as usize
}

/// Length of the longest common prefix of `a[a_at..]` and `a[b_at..]`
/// (with `b_at > a_at`), capped at `max_len`. Compares whole 8-byte words
/// first, then the remaining tail bytes.
#[inline]
fn match_length(bytes: &[u8], a_at: usize, b_at: usize, max_len: usize) -> usize {
    let mut len = 0usize;
    while len + 8 <= max_len {
        let a = u64::from_le_bytes(bytes[a_at + len..a_at + len + 8].try_into().expect("8 bytes"));
        let b = u64::from_le_bytes(bytes[b_at + len..b_at + len + 8].try_into().expect("8 bytes"));
        let diff = a ^ b;
        if diff != 0 {
            return len + (diff.trailing_zeros() / 8) as usize;
        }
        len += 8;
    }
    while len < max_len && bytes[a_at + len] == bytes[b_at + len] {
        len += 1;
    }
    len
}

/// [`match_length`] at an explicit SIMD tier: the SSE tier compares 16 bytes
/// per iteration, AVX2 compares 32, both locating the first mismatch with a
/// `movemask`. Every tier returns the same length as the scalar comparator,
/// so the greedy token stream is independent of the dispatch level.
///
/// # Panics
/// Panics unless `a_at <= b_at` and `b_at + max_len <= bytes.len()` — the
/// in-bounds window the wide loads rely on (the compress loop guarantees it:
/// `max_len` is capped at `input.len() - pos` and candidates sit before
/// `pos`).
// Sanctioned `unsafe_code` waiver (see `crate::dispatch`): this shim owns
// the bounds assertion the wide loads rely on and the feature-detection
// guard that makes the intrinsics legal.
#[allow(unsafe_code)]
pub fn match_length_at(
    level: SimdLevel,
    bytes: &[u8],
    a_at: usize,
    b_at: usize,
    max_len: usize,
) -> usize {
    assert!(
        a_at <= b_at && max_len <= bytes.len() && b_at <= bytes.len() - max_len,
        "match window out of bounds"
    );
    #[cfg(target_arch = "x86_64")]
    {
        if level >= SimdLevel::Avx2 && max_len >= 32 {
            // SAFETY: AVX2 verified by dispatch; bounds asserted above.
            return unsafe { simd::match_length_avx2(bytes, a_at, b_at, max_len) };
        }
        if level >= SimdLevel::Sse4 && max_len >= 16 {
            // SAFETY: 128-bit loads are baseline x86_64; bounds asserted above.
            return unsafe { simd::match_length_sse2(bytes, a_at, b_at, max_len) };
        }
    }
    let _ = level;
    match_length(bytes, a_at, b_at, max_len)
}

#[cfg(target_arch = "x86_64")]
mod simd {
    // Sanctioned `unsafe_code` waiver (see `crate::dispatch`): `core::arch`
    // intrinsics are unsafe by definition; the callers assert the bounds the
    // wide loads need and the bit-identity suite pins scalar equivalence.
    #![allow(unsafe_code)]

    use std::arch::x86_64::*;

    /// 16-byte compare loop, falling back to the scalar comparator for the
    /// sub-16-byte tail.
    ///
    /// # Safety
    /// Requires `a_at <= b_at` and `b_at + max_len <= bytes.len()`.
    #[inline]
    pub(super) unsafe fn match_length_sse2(
        bytes: &[u8],
        a_at: usize,
        b_at: usize,
        max_len: usize,
    ) -> usize {
        let base = bytes.as_ptr();
        let mut len = 0usize;
        while len + 16 <= max_len {
            let a = _mm_loadu_si128(base.add(a_at + len) as *const __m128i);
            let b = _mm_loadu_si128(base.add(b_at + len) as *const __m128i);
            let eq = _mm_movemask_epi8(_mm_cmpeq_epi8(a, b)) as u32;
            if eq != 0xFFFF {
                return len + (!eq).trailing_zeros() as usize;
            }
            len += 16;
        }
        len + super::match_length(bytes, a_at + len, b_at + len, max_len - len)
    }

    /// 32-byte compare loop, falling back to the scalar comparator for the
    /// sub-32-byte tail.
    ///
    /// # Safety
    /// Requires AVX2, `a_at <= b_at`, and `b_at + max_len <= bytes.len()`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn match_length_avx2(
        bytes: &[u8],
        a_at: usize,
        b_at: usize,
        max_len: usize,
    ) -> usize {
        let base = bytes.as_ptr();
        let mut len = 0usize;
        while len + 32 <= max_len {
            let a = _mm256_loadu_si256(base.add(a_at + len) as *const __m256i);
            let b = _mm256_loadu_si256(base.add(b_at + len) as *const __m256i);
            let eq = _mm256_movemask_epi8(_mm256_cmpeq_epi8(a, b)) as u32;
            if eq != 0xFFFF_FFFF {
                return len + (!eq).trailing_zeros() as usize;
            }
            len += 32;
        }
        len + super::match_length(bytes, a_at + len, b_at + len, max_len - len)
    }
}

/// Compress `input` with greedy LZ77. The output always starts with a varint
/// holding the original length.
///
/// # Panics
/// Panics if `input` is 4 GiB or larger: chain positions are stored as
/// `u32` (halving the matcher's memory traffic), so the single-stream size
/// is capped at `u32::MAX - 1` bytes — three orders of magnitude above the
/// paper-scale payloads this crate compresses.
pub fn lz77_compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    lz77_compress_with(&mut CodecScratch::new(), input, &mut out);
    out
}

/// [`lz77_compress`] appending to a caller-owned buffer, reusing the hash
/// chains in `scratch`. The emitted bytes are identical to
/// [`lz77_compress`]'s.
///
/// # Panics
/// Panics on inputs of 4 GiB or more (see [`lz77_compress`]).
pub fn lz77_compress_with(scratch: &mut CodecScratch, input: &[u8], out: &mut Vec<u8>) {
    lz77_compress_with_at(scratch, simd_level(), input, out);
}

/// [`lz77_compress_with`] at an explicit SIMD tier (tests and benchmarks —
/// the emitted stream is identical at every tier).
///
/// # Panics
/// Panics on inputs of 4 GiB or more (see [`lz77_compress`]).
pub fn lz77_compress_with_at(
    scratch: &mut CodecScratch,
    level: SimdLevel,
    input: &[u8],
    out: &mut Vec<u8>,
) {
    out.reserve(input.len() / 2 + 16);
    write_varint(out, input.len() as u64);
    if input.is_empty() {
        return;
    }
    assert!(input.len() < CHAIN_NIL as usize, "input too large for u32 chain positions");

    // Reusable matcher state: heads are reset each call (the chains only
    // ever reference positions inserted during this call, so `prev` needs
    // sizing but no clearing — entries are written before they are read).
    if scratch.head.len() < (1 << HASH_BITS) {
        scratch.head.resize(1 << HASH_BITS, CHAIN_NIL);
    } else {
        scratch.head.fill(CHAIN_NIL);
    }
    if scratch.prev.len() < input.len() {
        scratch.prev.resize(input.len(), CHAIN_NIL);
    }
    let head = &mut scratch.head;
    let prev = &mut scratch.prev;

    let mut literals_start = 0usize;
    let mut pos = 0usize;

    let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize, input: &[u8]| {
        if to > from {
            out.push(0x00);
            write_varint(out, (to - from) as u64);
            out.extend_from_slice(&input[from..to]);
        }
    };

    while pos < input.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;

        if pos + MIN_MATCH <= input.len() {
            let h = hash3(&input[pos..]);
            let max_len = (input.len() - pos).min(MAX_MATCH);
            let mut candidate = head[h];
            let mut chain = 0usize;
            while candidate != CHAIN_NIL && chain < MAX_CHAIN {
                let candidate_pos = candidate as usize;
                if pos - candidate_pos > WINDOW {
                    break;
                }
                if best_len >= max_len {
                    // No remaining candidate can strictly beat the current
                    // best (matches are capped at max_len), so the walk can
                    // stop — it has no side effects. Subsumes the historical
                    // `len >= MAX_MATCH` break.
                    break;
                }
                // Probe the byte a longer match would have to share before
                // paying for a full comparison: if it differs, the common
                // prefix is ≤ best_len and the candidate cannot win. The
                // greedy outcome is unchanged.
                if input[candidate_pos + best_len] == input[pos + best_len] {
                    let len = match_length_at(level, input, candidate_pos, pos, max_len);
                    if len > best_len {
                        best_len = len;
                        best_dist = pos - candidate_pos;
                    }
                }
                candidate = prev[candidate_pos];
                chain += 1;
            }
            // Insert the current position into the hash chain.
            prev[pos] = head[h];
            head[h] = pos as u32;
        }

        if best_len >= MIN_MATCH {
            flush_literals(out, literals_start, pos, input);
            out.push(0x01);
            write_varint(out, best_dist as u64);
            write_varint(out, best_len as u64);
            // Insert skipped positions into the chains so later matches can
            // reference them (bounded to keep the encoder linear-ish).
            let end = pos + best_len;
            let mut p = pos + 1;
            while p < end && p + MIN_MATCH <= input.len() {
                let h = hash3(&input[p..]);
                prev[p] = head[h];
                head[h] = p as u32;
                p += 1;
            }
            pos = end;
            literals_start = pos;
        } else {
            pos += 1;
        }
    }
    flush_literals(out, literals_start, input.len(), input);
}

/// Decompress a stream produced by [`lz77_compress`].
pub fn lz77_decompress(bytes: &[u8]) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::new();
    lz77_decompress_into(bytes, &mut out)?;
    Ok(out)
}

/// [`lz77_decompress`] into a caller-owned buffer (cleared first), so
/// decode-heavy loops can recycle one output allocation.
pub fn lz77_decompress_into(bytes: &[u8], out: &mut Vec<u8>) -> Result<(), CodecError> {
    out.clear();
    let mut offset = 0usize;
    let (orig_len, used) = read_varint(bytes)?;
    offset += used;
    // Bounded by the compressed size: a match token costs ≥ 3 bytes for
    // ≤ MAX_MATCH output, so a corrupt length can't force an absurd reserve.
    out.reserve((orig_len as usize).min(bytes.len().saturating_mul(MAX_MATCH)));

    while (out.len() as u64) < orig_len {
        if offset >= bytes.len() {
            return Err(CodecError::UnexpectedEof);
        }
        let tag = bytes[offset];
        offset += 1;
        match tag {
            0x00 => {
                let (len, used) = read_varint(&bytes[offset..])?;
                offset += used;
                let len = len as usize;
                if offset + len > bytes.len() {
                    return Err(CodecError::UnexpectedEof);
                }
                out.extend_from_slice(&bytes[offset..offset + len]);
                offset += len;
            }
            0x01 => {
                let (dist, used) = read_varint(&bytes[offset..])?;
                offset += used;
                let (len, used) = read_varint(&bytes[offset..])?;
                offset += used;
                let dist = dist as usize;
                let len = len as usize;
                if dist == 0 || dist > out.len() {
                    return Err(CodecError::Corrupt(format!(
                        "match distance {dist} exceeds output length {}",
                        out.len()
                    )));
                }
                let start = out.len() - dist;
                if dist >= len {
                    // Non-overlapping: one bulk copy.
                    out.extend_from_within(start..start + len);
                } else {
                    // Overlapping copies are legal (classic LZ77 run
                    // extension): the suffix from `start` is periodic with
                    // period `dist`, so each pass doubles the available
                    // pattern.
                    let mut copied = 0usize;
                    while copied < len {
                        let take = (len - copied).min(out.len() - start);
                        out.extend_from_within(start..start + take);
                        copied += take;
                    }
                }
            }
            other => {
                return Err(CodecError::Corrupt(format!("unknown token tag {other:#x}")));
            }
        }
    }
    if out.len() as u64 != orig_len {
        return Err(CodecError::Corrupt("decoded length mismatch".into()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> usize {
        let compressed = lz77_compress(data);
        let back = lz77_decompress(&compressed).unwrap();
        assert_eq!(back, data);
        // The scratch-reusing entry points agree byte for byte, including on
        // a scratch warmed by a different input.
        let mut scratch = CodecScratch::new();
        let mut warm = Vec::new();
        lz77_compress_with(&mut scratch, b"warmup warmup warmup", &mut warm);
        let mut with_out = Vec::new();
        lz77_compress_with(&mut scratch, data, &mut with_out);
        assert_eq!(with_out, compressed);
        let mut into = Vec::new();
        lz77_decompress_into(&compressed, &mut into).unwrap();
        assert_eq!(into, data);
        compressed.len()
    }

    #[test]
    fn empty_and_tiny_inputs() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"abc");
        roundtrip(b"abcd");
    }

    #[test]
    fn long_run_compresses_massively() {
        let data = vec![0u8; 100_000];
        let size = roundtrip(&data);
        assert!(size < 200, "run of zeros compressed to {size} bytes");
    }

    #[test]
    fn repeated_pattern_compresses() {
        let data: Vec<u8> = b"hello world, ".iter().copied().cycle().take(10_000).collect();
        let size = roundtrip(&data);
        assert!(size < 1_000, "repetitive text compressed to {size} bytes");
    }

    #[test]
    fn overlapping_match_is_reproduced() {
        // "ababab..." forces overlapping copies with distance 2.
        let data: Vec<u8> = b"ab".iter().copied().cycle().take(4097).collect();
        roundtrip(&data);
    }

    #[test]
    fn overlapping_matches_at_every_small_distance() {
        // Distances 1..16 with lengths longer than the distance exercise the
        // strided overlap copy in the decoder.
        for dist in 1usize..16 {
            let pattern: Vec<u8> = (0..dist as u8).collect();
            let data: Vec<u8> = pattern.iter().copied().cycle().take(dist * 40 + 3).collect();
            roundtrip(&data);
        }
    }

    #[test]
    fn incompressible_data_roundtrips() {
        let mut state = 0x9E3779B97F4A7C15u64;
        let data: Vec<u8> = (0..50_000)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state & 0xFF) as u8
            })
            .collect();
        let size = roundtrip(&data);
        // Pseudo-random bytes should not blow up by more than the token framing.
        assert!(size < data.len() + data.len() / 8 + 64);
    }

    #[test]
    fn structured_float_bytes_compress() {
        // Little-endian doubles from a piecewise-constant field repeat whole
        // 8-byte words, which LZ77 folds into matches.
        let mut data = Vec::new();
        for i in 0..8192 {
            let v = (i / 16) as f64 * 0.125 + 1.0;
            data.extend_from_slice(&v.to_le_bytes());
        }
        let size = roundtrip(&data);
        assert!(size < data.len() / 4, "piecewise-constant doubles: {size} vs {}", data.len());
    }

    #[test]
    fn match_length_word_and_tail_paths_agree() {
        let mut data: Vec<u8> = b"abcdefgh_abcdefgh_abcdefgX".to_vec();
        data.extend_from_slice(b"abcdefgh_abcdefgh_abcdefgh_tail");
        for (a, b, cap) in [(0usize, 9usize, 17usize), (0, 26, 31), (9, 26, 20), (0, 0, 5)] {
            let reference =
                data[a..].iter().zip(&data[b..]).take(cap).take_while(|(x, y)| x == y).count();
            assert_eq!(match_length(&data, a, b, cap), reference, "a={a} b={b} cap={cap}");
        }
    }

    #[test]
    fn match_length_levels_agree_on_every_mismatch_offset() {
        use crate::dispatch::supported_levels;
        // A long shared prefix broken at every offset in turn hits the wide
        // loops, their movemask mismatch location, and the scalar tail.
        let period = 97usize; // coprime with 16 and 32 → mismatches land at every lane
        let template: Vec<u8> = (0..400).map(|i| (i % period) as u8).collect();
        let mut data = template.clone();
        data.extend_from_slice(&template);
        let b_at = template.len();
        for mismatch in 0..160usize {
            let mut bytes = data.clone();
            bytes[b_at + mismatch] ^= 0xA5;
            for cap in [mismatch / 2 + 1, mismatch, mismatch + 1, 160, 400] {
                let reference = match_length(&bytes, 0, b_at, cap);
                for &level in supported_levels() {
                    assert_eq!(
                        match_length_at(level, &bytes, 0, b_at, cap),
                        reference,
                        "mismatch={mismatch} cap={cap} level={level:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn compress_streams_identical_at_every_level() {
        use crate::dispatch::supported_levels;
        let mut data = Vec::new();
        for i in 0..4096 {
            let v = ((i / 7) % 50) as f64 * 0.25 - 3.0;
            data.extend_from_slice(&v.to_le_bytes());
        }
        data.extend_from_slice(&vec![7u8; 10_000]);
        let mut scratch = CodecScratch::new();
        let mut reference = Vec::new();
        lz77_compress_with_at(&mut scratch, SimdLevel::Scalar, &data, &mut reference);
        for &level in supported_levels() {
            let mut out = Vec::new();
            lz77_compress_with_at(&mut scratch, level, &data, &mut out);
            assert_eq!(out, reference, "level={level:?}");
        }
        assert_eq!(lz77_decompress(&reference).unwrap(), data);
    }

    #[test]
    fn corrupt_streams_are_rejected() {
        let compressed =
            lz77_compress(b"some reasonably long input to compress, repeated, repeated");
        // Truncation.
        assert!(lz77_decompress(&compressed[..compressed.len() - 3]).is_err());
        // Bad tag.
        let mut bad = compressed.clone();
        // Find the first token tag (right after the length varint) and clobber it.
        let (_, used) = read_varint(&bad).unwrap();
        bad[used] = 0x7F;
        assert!(lz77_decompress(&bad).is_err());
        // Empty stream.
        assert!(lz77_decompress(&[]).is_err());
    }

    #[test]
    fn match_distance_validation() {
        // Hand-craft a stream with an impossible back-reference.
        let mut bad = Vec::new();
        write_varint(&mut bad, 10);
        bad.push(0x01); // match
        write_varint(&mut bad, 5); // distance 5 with empty output
        write_varint(&mut bad, 5);
        assert!(matches!(lz77_decompress(&bad), Err(CodecError::Corrupt(_))));
    }
}
