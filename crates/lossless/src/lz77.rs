//! Greedy hash-chain LZ77 with a byte-oriented token format.
//!
//! This plays the role Zstd plays behind SZ/MGARD: it removes repeated byte
//! patterns left over after entropy coding of quantization codes (long runs
//! of identical codes turn into highly repetitive Huffman output only when
//! codes straddle byte boundaries irregularly, and exact-stored IEEE doubles
//! often share exponent/sign bytes).
//!
//! Token stream format (after a varint original length):
//! * literal run: `0x00, varint len, len raw bytes`
//! * match: `0x01, varint distance, varint length`
//!
//! Greedy matching with a 3-byte hash head + chained previous positions,
//! bounded chain walk. Window size 64 KiB, minimum match length 4.

use crate::{read_varint, write_varint, CodecError};

const WINDOW: usize = 1 << 16;
const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 1 << 12;
const MAX_CHAIN: usize = 64;
const HASH_BITS: u32 = 15;

#[inline]
fn hash3(bytes: &[u8]) -> usize {
    let h = (u32::from(bytes[0]) << 16) | (u32::from(bytes[1]) << 8) | u32::from(bytes[2]);
    ((h.wrapping_mul(2654435761)) >> (32 - HASH_BITS)) as usize
}

/// Compress `input` with greedy LZ77. The output always starts with a varint
/// holding the original length.
pub fn lz77_compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    write_varint(&mut out, input.len() as u64);
    if input.is_empty() {
        return out;
    }

    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut prev = vec![usize::MAX; input.len()];

    let mut literals_start = 0usize;
    let mut pos = 0usize;

    let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize, input: &[u8]| {
        if to > from {
            out.push(0x00);
            write_varint(out, (to - from) as u64);
            out.extend_from_slice(&input[from..to]);
        }
    };

    while pos < input.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;

        if pos + MIN_MATCH <= input.len() {
            let h = hash3(&input[pos..]);
            let mut candidate = head[h];
            let mut chain = 0usize;
            while candidate != usize::MAX && chain < MAX_CHAIN {
                if pos - candidate > WINDOW {
                    break;
                }
                // Extend the match.
                let max_len = (input.len() - pos).min(MAX_MATCH);
                let mut len = 0usize;
                while len < max_len && input[candidate + len] == input[pos + len] {
                    len += 1;
                }
                if len > best_len {
                    best_len = len;
                    best_dist = pos - candidate;
                    if len >= MAX_MATCH {
                        break;
                    }
                }
                candidate = prev[candidate];
                chain += 1;
            }
            // Insert the current position into the hash chain.
            prev[pos] = head[h];
            head[h] = pos;
        }

        if best_len >= MIN_MATCH {
            flush_literals(&mut out, literals_start, pos, input);
            out.push(0x01);
            write_varint(&mut out, best_dist as u64);
            write_varint(&mut out, best_len as u64);
            // Insert skipped positions into the chains so later matches can
            // reference them (bounded to keep the encoder linear-ish).
            let end = pos + best_len;
            let mut p = pos + 1;
            while p < end && p + MIN_MATCH <= input.len() {
                let h = hash3(&input[p..]);
                prev[p] = head[h];
                head[h] = p;
                p += 1;
            }
            pos = end;
            literals_start = pos;
        } else {
            pos += 1;
        }
    }
    flush_literals(&mut out, literals_start, input.len(), input);
    out
}

/// Decompress a stream produced by [`lz77_compress`].
pub fn lz77_decompress(bytes: &[u8]) -> Result<Vec<u8>, CodecError> {
    let mut offset = 0usize;
    let (orig_len, used) = read_varint(bytes)?;
    offset += used;
    let mut out: Vec<u8> = Vec::with_capacity(orig_len as usize);

    while (out.len() as u64) < orig_len {
        if offset >= bytes.len() {
            return Err(CodecError::UnexpectedEof);
        }
        let tag = bytes[offset];
        offset += 1;
        match tag {
            0x00 => {
                let (len, used) = read_varint(&bytes[offset..])?;
                offset += used;
                let len = len as usize;
                if offset + len > bytes.len() {
                    return Err(CodecError::UnexpectedEof);
                }
                out.extend_from_slice(&bytes[offset..offset + len]);
                offset += len;
            }
            0x01 => {
                let (dist, used) = read_varint(&bytes[offset..])?;
                offset += used;
                let (len, used) = read_varint(&bytes[offset..])?;
                offset += used;
                let dist = dist as usize;
                let len = len as usize;
                if dist == 0 || dist > out.len() {
                    return Err(CodecError::Corrupt(format!(
                        "match distance {dist} exceeds output length {}",
                        out.len()
                    )));
                }
                let start = out.len() - dist;
                // Overlapping copies are legal (classic LZ77 run extension).
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
            other => {
                return Err(CodecError::Corrupt(format!("unknown token tag {other:#x}")));
            }
        }
    }
    if out.len() as u64 != orig_len {
        return Err(CodecError::Corrupt("decoded length mismatch".into()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> usize {
        let compressed = lz77_compress(data);
        let back = lz77_decompress(&compressed).unwrap();
        assert_eq!(back, data);
        compressed.len()
    }

    #[test]
    fn empty_and_tiny_inputs() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"abc");
        roundtrip(b"abcd");
    }

    #[test]
    fn long_run_compresses_massively() {
        let data = vec![0u8; 100_000];
        let size = roundtrip(&data);
        assert!(size < 200, "run of zeros compressed to {size} bytes");
    }

    #[test]
    fn repeated_pattern_compresses() {
        let data: Vec<u8> = b"hello world, ".iter().copied().cycle().take(10_000).collect();
        let size = roundtrip(&data);
        assert!(size < 1_000, "repetitive text compressed to {size} bytes");
    }

    #[test]
    fn overlapping_match_is_reproduced() {
        // "ababab..." forces overlapping copies with distance 2.
        let data: Vec<u8> = b"ab".iter().copied().cycle().take(4097).collect();
        roundtrip(&data);
    }

    #[test]
    fn incompressible_data_roundtrips() {
        let mut state = 0x9E3779B97F4A7C15u64;
        let data: Vec<u8> = (0..50_000)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state & 0xFF) as u8
            })
            .collect();
        let size = roundtrip(&data);
        // Pseudo-random bytes should not blow up by more than the token framing.
        assert!(size < data.len() + data.len() / 8 + 64);
    }

    #[test]
    fn structured_float_bytes_compress() {
        // Little-endian doubles from a piecewise-constant field repeat whole
        // 8-byte words, which LZ77 folds into matches.
        let mut data = Vec::new();
        for i in 0..8192 {
            let v = (i / 16) as f64 * 0.125 + 1.0;
            data.extend_from_slice(&v.to_le_bytes());
        }
        let size = roundtrip(&data);
        assert!(size < data.len() / 4, "piecewise-constant doubles: {size} vs {}", data.len());
    }

    #[test]
    fn corrupt_streams_are_rejected() {
        let compressed =
            lz77_compress(b"some reasonably long input to compress, repeated, repeated");
        // Truncation.
        assert!(lz77_decompress(&compressed[..compressed.len() - 3]).is_err());
        // Bad tag.
        let mut bad = compressed.clone();
        // Find the first token tag (right after the length varint) and clobber it.
        let (_, used) = read_varint(&bad).unwrap();
        bad[used] = 0x7F;
        assert!(lz77_decompress(&bad).is_err());
        // Empty stream.
        assert!(lz77_decompress(&[]).is_err());
    }

    #[test]
    fn match_distance_validation() {
        // Hand-craft a stream with an impossible back-reference.
        let mut bad = Vec::new();
        write_varint(&mut bad, 10);
        bad.push(0x01); // match
        write_varint(&mut bad, 5); // distance 5 with empty output
        write_varint(&mut bad, 5);
        assert!(matches!(lz77_decompress(&bad), Err(CodecError::Corrupt(_))));
    }
}
