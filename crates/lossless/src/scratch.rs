//! Reusable working memory for the lossless coders.
//!
//! Every per-call allocation of the Huffman and LZ77 hot paths lives in a
//! [`CodecScratch`]: the dense histogram, the heap and tree arrays of the
//! code-length construction, the flat canonical code tables, the decoder
//! LUT, the LZ77 hash-chain heads, and the bit/byte buffers. A caller that
//! compresses many streams (the SZ/ZFP/MGARD compressors, the sweep
//! scheduler's worker threads) creates one scratch and threads `&mut`
//! references through `*_with` codec entry points; every buffer is cleared
//! (never shrunk) between calls, so steady state performs no allocation.
//!
//! The scratch-free wrappers (`huffman_encode`, `lz77_compress`, …) simply
//! create a fresh scratch per call, so existing callers keep working and
//! produce byte-identical streams.

use crate::bitstream::BitWriter;

/// Sentinel for "no position" in the LZ77 hash chains.
pub(crate) const CHAIN_NIL: u32 = u32::MAX;

/// Largest `max_symbol − min_symbol` span for which the Huffman histogram
/// and code tables use dense `Vec`-indexed storage (the common case:
/// quantization codes cluster tightly around the zero-residual code). Wider
/// alphabets fall back to an open-addressed symbol map of the distinct
/// symbols only.
pub(crate) const DENSE_SPAN_MAX: usize = 1 << 21;

/// A binary-heap node of the Huffman code-length construction.
///
/// Ordering is reversed (min-heap) on `(weight, order)` where `order` is the
/// smallest symbol in the node's subtree — subtrees hold disjoint symbol
/// sets, so the order is strict and the merge sequence (hence every code
/// length) is deterministic regardless of heap-internal layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct HeapNode {
    pub weight: u64,
    pub order: u32,
    pub id: u32,
}

impl Ord for HeapNode {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.weight.cmp(&self.weight).then(other.order.cmp(&self.order))
    }
}

impl PartialOrd for HeapNode {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Open-addressed `u32 symbol → u32 slot` map with linear probing, used for
/// alphabets too sparse for the dense histogram. Slots are handed out in
/// insertion order, so parallel `Vec`s indexed by slot play the role the
/// dense arrays play for tight alphabets. All storage is reusable.
#[derive(Debug, Default)]
pub(crate) struct SymbolMap {
    /// `keys[i] == EMPTY_KEY` marks a free bucket; the probe value for a
    /// present key is `vals[i]`.
    keys: Vec<u32>,
    vals: Vec<u32>,
    len: usize,
}

/// Bucket marker for "empty". `u32::MAX` is a legal symbol, so occupancy is
/// tracked in `vals` instead: `vals[i] == u32::MAX` marks a free bucket and
/// slot indices are capped below it.
const FREE_SLOT: u32 = u32::MAX;

impl SymbolMap {
    /// Remove every entry, keeping capacity.
    pub fn clear(&mut self) {
        self.vals.fill(FREE_SLOT);
        self.len = 0;
    }

    /// Number of distinct symbols inserted.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Slot of `sym`, inserting the next slot index if absent. Returns
    /// `(slot, inserted)`.
    pub fn get_or_insert(&mut self, sym: u32) -> (u32, bool) {
        if self.vals.is_empty() || self.len * 4 >= self.vals.len() * 3 {
            self.grow();
        }
        let mask = self.vals.len() - 1;
        let mut i = Self::hash(sym) & mask;
        loop {
            if self.vals[i] == FREE_SLOT {
                let slot = self.len as u32;
                debug_assert!(slot < FREE_SLOT);
                self.keys[i] = sym;
                self.vals[i] = slot;
                self.len += 1;
                return (slot, true);
            }
            if self.keys[i] == sym {
                return (self.vals[i], false);
            }
            i = (i + 1) & mask;
        }
    }

    /// Slot of `sym`, if present.
    #[inline]
    pub fn get(&self, sym: u32) -> Option<u32> {
        if self.vals.is_empty() {
            return None;
        }
        let mask = self.vals.len() - 1;
        let mut i = Self::hash(sym) & mask;
        loop {
            if self.vals[i] == FREE_SLOT {
                return None;
            }
            if self.keys[i] == sym {
                return Some(self.vals[i]);
            }
            i = (i + 1) & mask;
        }
    }

    #[inline]
    fn hash(sym: u32) -> usize {
        (sym.wrapping_mul(2654435761) >> 7) as usize
    }

    fn grow(&mut self) {
        let new_cap = (self.vals.len() * 2).max(64);
        let old_keys = std::mem::take(&mut self.keys);
        let old_vals = std::mem::take(&mut self.vals);
        self.keys = vec![0; new_cap];
        self.vals = vec![FREE_SLOT; new_cap];
        self.len = 0;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if v != FREE_SLOT {
                let mask = new_cap - 1;
                let mut i = Self::hash(k) & mask;
                while self.vals[i] != FREE_SLOT {
                    i = (i + 1) & mask;
                }
                self.keys[i] = k;
                self.vals[i] = v;
                self.len += 1;
            }
        }
    }
}

/// Input symbol types the alphabet machinery accepts: the coders work over
/// `u32` symbols, and the byte-oriented entry points feed `u8` streams
/// through the same histogram without widening the input first.
pub(crate) trait SymbolLike: Copy {
    /// The `u32` symbol value this input element codes for.
    fn sym(self) -> u32;
}

impl SymbolLike for u32 {
    #[inline(always)]
    fn sym(self) -> u32 {
        self
    }
}

impl SymbolLike for u8 {
    #[inline(always)]
    fn sym(self) -> u32 {
        u32::from(self)
    }
}

/// How the per-call symbol tables are addressed: densely by
/// `symbol − min_symbol`, or through the scratch's symbol map.
#[derive(Clone, Copy)]
pub(crate) enum TableMode {
    Dense { min: u32 },
    Sparse,
}

/// Histogram `symbols` into `alphabet` as `(symbol, count)` pairs sorted by
/// symbol, choosing dense or sparse table addressing by the alphabet's value
/// span. Shared by the Huffman and rANS coders (the first stage of both);
/// the caller hands in the reusable buffers of its scratch. The dense `hist`
/// keeps its all-zero between-calls invariant (used entries are re-zeroed).
pub(crate) fn build_alphabet_into<S: SymbolLike>(
    hist: &mut Vec<u64>,
    sym_map: &mut SymbolMap,
    slot_counts: &mut Vec<u64>,
    alphabet: &mut Vec<(u32, u64)>,
    symbols: &[S],
) -> TableMode {
    let mut min = u32::MAX;
    let mut max = 0u32;
    for &s in symbols {
        min = min.min(s.sym());
        max = max.max(s.sym());
    }
    let span = (max - min) as usize + 1;
    alphabet.clear();

    if span <= DENSE_SPAN_MAX {
        if hist.len() < span {
            hist.resize(span, 0);
        }
        for &s in symbols {
            let idx = (s.sym() - min) as usize;
            if hist[idx] == 0 {
                alphabet.push((s.sym(), 0));
            }
            hist[idx] += 1;
        }
        alphabet.sort_unstable_by_key(|&(sym, _)| sym);
        for entry in alphabet.iter_mut() {
            let idx = (entry.0 - min) as usize;
            entry.1 = hist[idx];
            hist[idx] = 0; // restore the all-zero invariant
        }
        TableMode::Dense { min }
    } else {
        sym_map.clear();
        slot_counts.clear();
        for &s in symbols {
            let (slot, inserted) = sym_map.get_or_insert(s.sym());
            if inserted {
                slot_counts.push(0);
                alphabet.push((s.sym(), 0));
            }
            slot_counts[slot as usize] += 1;
        }
        // Slots were handed out in insertion order, matching `alphabet`.
        debug_assert_eq!(sym_map.len(), alphabet.len());
        for (slot, entry) in alphabet.iter_mut().enumerate() {
            entry.1 = slot_counts[slot];
        }
        alphabet.sort_unstable_by_key(|&(sym, _)| sym);
        TableMode::Sparse
    }
}

/// Reusable buffers for every stage of the lossless hot path. See the
/// module documentation; the fields are crate-private — callers only create
/// the scratch and pass it to the `*_with` entry points.
#[derive(Debug, Default)]
pub struct CodecScratch {
    // ---- Huffman histogram ----
    /// Dense counts indexed by `symbol − min_symbol` (tight alphabets).
    /// Invariant: all-zero between calls (used entries are re-zeroed).
    pub(crate) hist: Vec<u64>,
    /// Sparse-path counts indexed by [`SymbolMap`] slot.
    pub(crate) slot_counts: Vec<u64>,
    /// Sparse-path symbol → slot map.
    pub(crate) sym_map: SymbolMap,
    /// `(symbol, count)` pairs sorted by symbol — the canonical alphabet
    /// enumeration the header is written from.
    pub(crate) alphabet: Vec<(u32, u64)>,

    // ---- Huffman code construction ----
    /// Heap storage for the code-length build (allocation recycled through
    /// `BinaryHeap::from` / `into_vec`).
    pub(crate) heap: Vec<HeapNode>,
    /// Children of internal tree nodes (leaves are ids `< alphabet.len()`).
    pub(crate) children: Vec<(u32, u32)>,
    /// Depth-first traversal stack for depth assignment.
    pub(crate) stack: Vec<(u32, u32)>,
    /// Code length per leaf, parallel to `alphabet`.
    pub(crate) lens: Vec<u32>,
    /// `(length, symbol, leaf_index)` sorted by `(length, symbol)` — the
    /// canonical assignment order.
    pub(crate) canon: Vec<(u32, u32, u32)>,

    // ---- Huffman encode tables ----
    /// Dense `symbol − min_symbol` → code length (0 = absent).
    /// Invariant: all-zero between calls, so only `O(distinct)` entries are
    /// re-zeroed after an encode.
    pub(crate) enc_len: Vec<u8>,
    /// Dense `symbol − min_symbol` → canonical code. Entries are only
    /// meaningful where `enc_len` is non-zero (stale codes are never read).
    pub(crate) enc_code: Vec<u64>,
    /// Sparse slot → `(length, code)` pairs.
    pub(crate) slot_codes: Vec<(u32, u64)>,
    /// Payload bit accumulator.
    pub(crate) writer: BitWriter,

    // ---- Huffman decode tables ----
    /// Decoded `(symbol, length)` header entries.
    pub(crate) dec_lens: Vec<(u32, u32)>,
    /// Symbols in canonical `(length, symbol)` order.
    pub(crate) dec_syms: Vec<u32>,
    /// LUT: peeked prefix → symbol (parallel to `lut_len`).
    pub(crate) lut_sym: Vec<u32>,
    /// LUT: peeked prefix → code length (0 = longer than the LUT covers).
    pub(crate) lut_len: Vec<u8>,

    // ---- LZ77 hash chains ----
    /// Hash bucket → most recent position.
    pub(crate) head: Vec<u32>,
    /// Position → previous position in the same bucket.
    pub(crate) prev: Vec<u32>,
}

impl CodecScratch {
    /// Create an empty scratch; buffers grow on first use and are then
    /// recycled across calls.
    pub fn new() -> Self {
        CodecScratch::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbol_map_assigns_slots_in_insertion_order() {
        let mut m = SymbolMap::default();
        assert_eq!(m.get_or_insert(700), (0, true));
        assert_eq!(m.get_or_insert(0), (1, true));
        assert_eq!(m.get_or_insert(u32::MAX), (2, true));
        assert_eq!(m.get_or_insert(700), (0, false));
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(0), Some(1));
        assert_eq!(m.get(u32::MAX), Some(2));
        assert_eq!(m.get(1), None);
    }

    #[test]
    fn symbol_map_survives_growth_and_clear() {
        let mut m = SymbolMap::default();
        for i in 0..10_000u32 {
            let (slot, inserted) = m.get_or_insert(i * 7919);
            assert_eq!(slot, i);
            assert!(inserted);
        }
        for i in 0..10_000u32 {
            assert_eq!(m.get(i * 7919), Some(i));
        }
        m.clear();
        assert_eq!(m.len(), 0);
        assert_eq!(m.get(7919), None);
        let (slot, inserted) = m.get_or_insert(7919);
        assert_eq!((slot, inserted), (0, true));
    }

    #[test]
    fn heap_node_ordering_is_a_min_heap_on_weight_then_order() {
        use std::collections::BinaryHeap;
        let mut h = BinaryHeap::new();
        h.push(HeapNode { weight: 5, order: 1, id: 0 });
        h.push(HeapNode { weight: 2, order: 9, id: 1 });
        h.push(HeapNode { weight: 2, order: 3, id: 2 });
        assert_eq!(h.pop().unwrap().id, 2, "lowest weight, lowest order first");
        assert_eq!(h.pop().unwrap().id, 1);
        assert_eq!(h.pop().unwrap().id, 0);
    }
}
