//! XXH64 checksums with a runtime-dispatched AVX2 stripe loop.
//!
//! The framed container ([`lcc_pressio`]'s `LCCF` streams) can carry one
//! 64-bit checksum per block so corruption is detected *before* a block
//! decoder walks a damaged stream. XXH64 is the standard pick for that job:
//! far stronger mixing than CRC32 at a few bytes per cycle, and the 32-byte
//! stripe loop (four independent 64-bit accumulator lanes) maps directly
//! onto one AVX2 register.
//!
//! This is a from-scratch implementation of the canonical XXH64 algorithm
//! (same primes, same round/merge/avalanche structure), so digests match the
//! reference `xxhash` library for any input. The AVX2 path vectorizes only
//! the stripe loop — all arithmetic is wrapping 64-bit integer work, so the
//! vector lanes are bit-identical to the scalar accumulators — and the
//! setup/merge/tail stay scalar. Dispatch follows
//! [`crate::dispatch::simd_level`]; [`xxh64_at`] pins an explicit tier for
//! the equivalence tests and benchmarks.

use crate::dispatch::{simd_level, SimdLevel};

const PRIME64_1: u64 = 0x9E3779B185EBCA87;
const PRIME64_2: u64 = 0xC2B2AE3D27D4EB4F;
const PRIME64_3: u64 = 0x165667B19E3779F9;
const PRIME64_4: u64 = 0x85EBCA77C2B2AE63;
const PRIME64_5: u64 = 0x27D4EB2F165667C5;

#[inline(always)]
fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"))
}

#[inline(always)]
fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"))
}

/// One accumulator round: `rotl31(acc + lane·P2) · P1`.
#[inline(always)]
fn round(acc: u64, lane: u64) -> u64 {
    acc.wrapping_add(lane.wrapping_mul(PRIME64_2)).rotate_left(31).wrapping_mul(PRIME64_1)
}

/// Fold one accumulator into the merged hash.
#[inline(always)]
fn merge_round(hash: u64, acc: u64) -> u64 {
    (hash ^ round(0, acc)).wrapping_mul(PRIME64_1).wrapping_add(PRIME64_4)
}

/// XXH64 of `bytes` at the process-wide dispatch level.
pub fn xxh64(bytes: &[u8], seed: u64) -> u64 {
    xxh64_at(simd_level(), bytes, seed)
}

/// [`xxh64`] at an explicit dispatch tier (tests and benchmarks; every tier
/// produces the same digest).
// Sanctioned `unsafe_code` waiver (see `crate::dispatch`): this shim holds
// the feature-detection guard that makes the AVX2 stripe loop legal.
#[allow(unsafe_code)]
pub fn xxh64_at(level: SimdLevel, bytes: &[u8], seed: u64) -> u64 {
    let len = bytes.len();
    let mut hash;
    let mut at = 0usize;
    if len >= 32 {
        let stripes = len / 32;
        let accs = {
            #[cfg(target_arch = "x86_64")]
            {
                if level >= SimdLevel::Avx2 {
                    // SAFETY: the AVX2 tier is only reachable when
                    // `supported_levels()` contains it, i.e. the CPU has AVX2.
                    unsafe { avx2::stripes(bytes, stripes, seed) }
                } else {
                    stripes_scalar(bytes, stripes, seed)
                }
            }
            #[cfg(not(target_arch = "x86_64"))]
            {
                let _ = level;
                stripes_scalar(bytes, stripes, seed)
            }
        };
        at = stripes * 32;
        let [v1, v2, v3, v4] = accs;
        hash = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        hash = merge_round(hash, v1);
        hash = merge_round(hash, v2);
        hash = merge_round(hash, v3);
        hash = merge_round(hash, v4);
    } else {
        hash = seed.wrapping_add(PRIME64_5);
    }

    hash = hash.wrapping_add(len as u64);
    while at + 8 <= len {
        hash = (hash ^ round(0, read_u64(bytes, at)))
            .rotate_left(27)
            .wrapping_mul(PRIME64_1)
            .wrapping_add(PRIME64_4);
        at += 8;
    }
    if at + 4 <= len {
        hash = (hash ^ u64::from(read_u32(bytes, at)).wrapping_mul(PRIME64_1))
            .rotate_left(23)
            .wrapping_mul(PRIME64_2)
            .wrapping_add(PRIME64_3);
        at += 4;
    }
    while at < len {
        hash = (hash ^ u64::from(bytes[at]).wrapping_mul(PRIME64_5))
            .rotate_left(11)
            .wrapping_mul(PRIME64_1);
        at += 1;
    }

    hash ^= hash >> 33;
    hash = hash.wrapping_mul(PRIME64_2);
    hash ^= hash >> 29;
    hash = hash.wrapping_mul(PRIME64_3);
    hash ^= hash >> 32;
    hash
}

/// The four seeded accumulators after `stripes` 32-byte stripes, scalar.
fn stripes_scalar(bytes: &[u8], stripes: usize, seed: u64) -> [u64; 4] {
    let mut v1 = seed.wrapping_add(PRIME64_1).wrapping_add(PRIME64_2);
    let mut v2 = seed.wrapping_add(PRIME64_2);
    let mut v3 = seed;
    let mut v4 = seed.wrapping_sub(PRIME64_1);
    for s in 0..stripes {
        let at = s * 32;
        v1 = round(v1, read_u64(bytes, at));
        v2 = round(v2, read_u64(bytes, at + 8));
        v3 = round(v3, read_u64(bytes, at + 16));
        v4 = round(v4, read_u64(bytes, at + 24));
    }
    [v1, v2, v3, v4]
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    // The workspace denies `unsafe_code`; the SIMD tiers are the second
    // sanctioned waiver (after the loadgen counting allocator): `core::arch`
    // intrinsics are unsafe by definition, and every entry point here is
    // guarded by runtime feature detection plus the bit-identity test suite.
    #![allow(unsafe_code)]

    use super::{PRIME64_1, PRIME64_2};
    use std::arch::x86_64::*;

    /// Lane-wise wrapping 64-bit multiply (AVX2 has no `vpmullq`): combine
    /// the three 32×32→64 partial products that land in the low 64 bits.
    #[inline(always)]
    unsafe fn mul64(a: __m256i, b: __m256i, b_hi: __m256i) -> __m256i {
        let lo = _mm256_mul_epu32(a, b);
        let a_hi = _mm256_srli_epi64::<32>(a);
        let cross = _mm256_add_epi64(_mm256_mul_epu32(a_hi, b), _mm256_mul_epu32(a, b_hi));
        _mm256_add_epi64(lo, _mm256_slli_epi64::<32>(cross))
    }

    #[inline(always)]
    unsafe fn rotl31(v: __m256i) -> __m256i {
        _mm256_or_si256(_mm256_slli_epi64::<31>(v), _mm256_srli_epi64::<33>(v))
    }

    /// The four seeded accumulators after `stripes` 32-byte stripes, with
    /// all four lanes in one 256-bit register. Identical wrapping integer
    /// arithmetic to [`super::stripes_scalar`], hence identical digests.
    ///
    /// # Safety
    /// The CPU must support AVX2 and `bytes` must hold at least
    /// `stripes * 32` bytes.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn stripes(bytes: &[u8], stripes: usize, seed: u64) -> [u64; 4] {
        debug_assert!(bytes.len() >= stripes * 32);
        let p1 = _mm256_set1_epi64x(PRIME64_1 as i64);
        let p1_hi = _mm256_srli_epi64::<32>(p1);
        let p2 = _mm256_set1_epi64x(PRIME64_2 as i64);
        let p2_hi = _mm256_srli_epi64::<32>(p2);
        let mut acc = _mm256_set_epi64x(
            seed.wrapping_sub(PRIME64_1) as i64,
            seed as i64,
            seed.wrapping_add(PRIME64_2) as i64,
            seed.wrapping_add(PRIME64_1).wrapping_add(PRIME64_2) as i64,
        );
        let base = bytes.as_ptr();
        for s in 0..stripes {
            let lanes = _mm256_loadu_si256(base.add(s * 32) as *const __m256i);
            acc = _mm256_add_epi64(acc, mul64(lanes, p2, p2_hi));
            acc = mul64(rotl31(acc), p1, p1_hi);
        }
        let mut out = [0u64; 4];
        _mm256_storeu_si256(out.as_mut_ptr() as *mut __m256i, acc);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::supported_levels;

    fn pseudo_random(n: usize, mut state: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            out.push((state >> 24) as u8);
        }
        out
    }

    #[test]
    fn reference_vectors() {
        // Canonical XXH64 digests (the reference library's test vectors).
        assert_eq!(xxh64(b"", 0), 0xEF46_DB37_51D8_E999);
        assert_eq!(xxh64(b"a", 0), 0xD24E_C4F1_A98C_6E5B);
        assert_eq!(xxh64(b"abc", 0), 0x44BC_2CF5_AD77_0999);
    }

    #[test]
    fn seed_changes_the_digest() {
        let data = pseudo_random(100, 7);
        assert_ne!(xxh64(&data, 0), xxh64(&data, 1));
    }

    #[test]
    fn every_supported_level_matches_scalar() {
        // Cover every tail-length class on both sides of the 32-byte stripe
        // threshold, plus stripe-heavy inputs where the AVX2 loop dominates.
        let sizes: Vec<usize> = (0..64).chain([100, 127, 128, 255, 1000, 4096, 65_537]).collect();
        for &n in &sizes {
            let data = pseudo_random(n, n as u64 + 1);
            let reference = xxh64_at(SimdLevel::Scalar, &data, 0);
            for &level in supported_levels() {
                assert_eq!(xxh64_at(level, &data, 0), reference, "n={n} level={level:?}");
                assert_eq!(
                    xxh64_at(level, &data, 0x1234_5678_9ABC_DEF0),
                    xxh64_at(SimdLevel::Scalar, &data, 0x1234_5678_9ABC_DEF0),
                    "seeded n={n} level={level:?}"
                );
            }
        }
    }

    #[test]
    fn single_bit_flips_change_the_digest() {
        let data = pseudo_random(257, 99);
        let reference = xxh64(&data, 0);
        for at in [0usize, 31, 32, 100, 256] {
            let mut flipped = data.clone();
            flipped[at] ^= 1;
            assert_ne!(xxh64(&flipped, 0), reference, "flip at {at}");
        }
    }
}
