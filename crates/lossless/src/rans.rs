//! Interleaved byte-oriented rANS coding over `u32` symbols, in a 2-way
//! and an 8-way stream format.
//!
//! The fast-path entropy backend of the codec ablation: where the Huffman
//! coder spends whole bits per symbol and needs a code tree, rANS codes at
//! fractional-bit granularity from a flat frequency table and renormalizes
//! byte-at-a-time, so encode and decode are short branch-light integer
//! pipelines. The layout follows the well-known public-domain byte-wise
//! rANS construction:
//!
//! * **32-bit states** kept in the renormalization interval
//!   `[2^23, 2^31)`, emitting/consuming one byte at a time,
//! * **12-bit normalized frequency tables** (`SCALE = 4096`): per-symbol
//!   frequencies are scaled to sum exactly to `SCALE`, so the decoder's
//!   cumulative-table lookup is a single 4096-entry LUT load,
//! * **interleaving**: symbol index `i` threads state `i mod N`, giving
//!   the CPU N independent dependency chains to overlap (the encoder
//!   walks the input in reverse — rANS is LIFO),
//! * **division-free encoding** via precomputed reciprocals
//!   (`q = (x·rcp) >> shift` replaces `x / freq` in the hot loop).
//!
//! The 2-way format (`rans_encode`/`rans_decode`) flushes both states into
//! one shared reversed-emit buffer; its decoder must therefore consume
//! renormalization bytes strictly in symbol order, which caps lane
//! parallelism at the two interleaved chains. The 8-way format
//! (`rans8_encode`/`rans8_decode`) gives every state its **own lane
//! buffer**, stitched with a lane-length header: each lane carries its seed
//! state and exactly the renorm bytes that lane consumes, so the decoder
//! holds eight independent byte cursors and all eight chains retire in
//! parallel (and the SIMD tiers can refill lanes independently).
//!
//! Alphabets with more than `SCALE` distinct symbols cannot be normalized
//! into a 12-bit table; those streams fall back to an embedded canonical
//! Huffman section behind a mode byte (the analogue of FSE's raw/RLE escape
//! modes) shared by both interleavings. Quantization-code streams sit far
//! below the limit in practice.
//!
//! All working memory lives in a caller-owned [`RansScratch`] — the
//! frequency/cumulative tables, the normalization workspace, and the
//! reversed-emit buffers are cleared, never shrunk, between calls, so the
//! `*_with` entry points are allocation-free in steady state exactly like
//! their Huffman counterparts.
//!
//! ## Stream layout
//!
//! ```text
//! u8 mode                     0 = 2-way rANS, 1 = embedded Huffman
//!                             fallback, 2 = 8-way rANS
//! mode 0:
//!   varint n_symbols
//!   varint alphabet_size      1..=4096 (absent when n_symbols == 0)
//!   (varint symbol, varint freq)*   ascending symbols; freqs sum to 4096
//!   varint payload_len
//!   payload                   u32-LE state0, u32-LE state1, renorm bytes
//! mode 1:
//!   a self-describing `huffman_encode` stream
//! mode 2:
//!   varint n_symbols
//!   varint alphabet_size      1..=4096 (absent when n_symbols == 0)
//!   (varint symbol, varint freq)*   the same shared 12-bit table
//!   varint payload_len
//!   varint lane_len × 8       lane lengths; they sum to payload_len
//!   payload                   8 concatenated lanes, each a u32-LE seed
//!                             state followed by that lane's renorm bytes
//!                             in decode order (lane k decodes symbols
//!                             k, k+8, k+16, …)
//! ```

use crate::dispatch::{simd_level, SimdLevel};
use crate::scratch::{build_alphabet_into, CodecScratch, SymbolLike, SymbolMap, TableMode};
use crate::{huffman_decode_with, huffman_encode_with, read_varint, write_varint, CodecError};

/// Log2 of the normalized frequency scale (12-bit tables).
pub const SCALE_BITS: u32 = 12;
/// Normalized frequencies sum to this value.
const SCALE: u32 = 1 << SCALE_BITS;
/// Lower bound of the state renormalization interval `[L, L·256)`.
const RANS_L: u32 = 1 << 23;
/// Mode byte: 2-way interleaved rANS payload.
const MODE_RANS: u8 = 0;
/// Mode byte: embedded Huffman stream (alphabet wider than the 12-bit table).
const MODE_HUFF: u8 = 1;
/// Mode byte: 8-way interleaved rANS payload with per-lane buffers.
const MODE_RANS8: u8 = 2;
/// Lane count of the 8-way format.
const LANES: usize = 8;
/// Decode-side cap on a single-symbol (zero-cost) stream's run length.
/// A one-entry alphabet codes for free, so the count is the only bound on
/// the output — 2^28 symbols (a 16384×16384 constant field) is far beyond
/// any workload here while keeping a forged tiny stream from claiming an
/// effectively unbounded allocation. Multi-symbol streams are instead
/// bounded by what their payload could possibly encode (see `decode_impl`).
const MAX_DEGENERATE_RUN: u64 = 1 << 28;

/// Precomputed per-symbol encoder metadata: renormalization threshold plus
/// the reciprocal that turns the `x / freq` of the state update into a
/// multiply-shift (the standard public-domain trick).
#[derive(Debug, Clone, Copy, Default)]
struct EncSym {
    /// Renormalize (emit a byte) while the state is at or above this.
    x_max: u32,
    /// Fixed-point reciprocal of the frequency.
    rcp_freq: u32,
    /// Additive bias folding the cumulative offset (and the `freq == 1`
    /// correction) into one term.
    bias: u32,
    /// `SCALE - freq`, the multiplier of the reciprocal quotient.
    cmpl_freq: u32,
    /// Right shift applied after the reciprocal multiply.
    rcp_shift: u32,
}

impl EncSym {
    /// Build the encoder entry for a symbol with cumulative start `start`
    /// and normalized frequency `freq` (`1..=SCALE`).
    fn new(start: u32, freq: u32) -> EncSym {
        debug_assert!((1..=SCALE).contains(&freq));
        let x_max = ((RANS_L >> SCALE_BITS) << 8) * freq;
        if freq < 2 {
            // freq == 1: q must equal x exactly. rcp = 2^32 − 1 gives
            // q = x − 1 (for x ≥ 1), compensated by folding SCALE − 1 into
            // the bias: x + start + SCALE − 1 + (x−1)(SCALE−1) = x·SCALE + start.
            EncSym {
                x_max,
                rcp_freq: u32::MAX,
                rcp_shift: 0,
                bias: start + SCALE - 1,
                cmpl_freq: SCALE - 1,
            }
        } else {
            // shift = ceil(log2(freq)); the rounded-up reciprocal makes
            // q = floor(x / freq) exact for all x < 2^31.
            let mut shift = 0u32;
            while (1u64 << shift) < u64::from(freq) {
                shift += 1;
            }
            let rcp_freq = (1u64 << (shift + 31)).div_ceil(u64::from(freq)) as u32;
            EncSym { x_max, rcp_freq, rcp_shift: shift - 1, bias: start, cmpl_freq: SCALE - freq }
        }
    }
}

/// One encoder step: renormalize `x` into range for `sym`, then push the
/// symbol. Emitted bytes go onto the reversed-emit stack.
#[inline(always)]
fn enc_put(mut x: u32, rev: &mut Vec<u8>, sym: &EncSym) -> u32 {
    while x >= sym.x_max {
        rev.push(x as u8);
        x >>= 8;
    }
    let q = ((u64::from(x) * u64::from(sym.rcp_freq)) >> 32 >> sym.rcp_shift) as u32;
    x + sym.bias + q * sym.cmpl_freq
}

/// Reusable working memory of the rANS coder: one instance per worker (held
/// inside the compressor scratches in a
/// [`ScratchArena`](https://docs.rs/lcc_pressio)-style bag) turns every
/// per-call table build and emit buffer into a cleared-not-freed reuse.
#[derive(Debug, Default)]
pub struct RansScratch {
    // ---- alphabet discovery (shared machinery with the Huffman coder) ----
    /// Dense counts indexed by `symbol − min_symbol`.
    /// Invariant: all-zero between calls.
    hist: Vec<u64>,
    /// Sparse-path counts indexed by symbol-map slot.
    slot_counts: Vec<u64>,
    /// Sparse-path symbol → slot map.
    sym_map: SymbolMap,
    /// `(symbol, count)` pairs sorted by symbol.
    alphabet: Vec<(u32, u64)>,

    // ---- normalization workspace ----
    /// Normalized frequency per alphabet index (sums to `SCALE`).
    freqs: Vec<u32>,
    /// Index permutation used to shave normalization excess deterministically.
    norm_order: Vec<u32>,

    // ---- encode tables ----
    /// Reciprocal metadata per alphabet index.
    enc_syms: Vec<EncSym>,
    /// Dense `symbol − min_symbol` → alphabet index. Entries are only
    /// meaningful for symbols of the current alphabet (which covers every
    /// input symbol); the used entries are re-zeroed after each encode.
    dense_idx: Vec<u32>,
    /// Sparse symbol-map slot → alphabet index.
    slot_idx: Vec<u32>,
    /// Reversed-emit buffer: bytes are pushed while encoding in reverse,
    /// then the buffer is reversed once into the output stream.
    rev: Vec<u8>,
    /// Per-lane reversed-emit stacks of the 8-way encoder: each state pushes
    /// its renorm bytes onto its own lane, so decode-side refill cursors are
    /// independent.
    lane_rev: [Vec<u8>; LANES],

    // ---- decode tables ----
    /// Symbol per alphabet index.
    dec_syms: Vec<u32>,
    /// Normalized frequency per alphabet index.
    dec_freq: Vec<u16>,
    /// Cumulative start per alphabet index.
    dec_cum: Vec<u16>,
    /// 4096-entry slot → alphabet index LUT.
    slot_lut: Vec<u16>,
    /// Fused slot → `symbol << 32 | freq << 16 | cum` entries: one 64-bit
    /// load replaces the index → symbol/freq/cum chain of dependent lookups.
    /// Used by the 2-way SIMD fast path and by every tier of the 8-way
    /// decoder (the scalar 8-way loop is LUT-bound, so the fused entry is a
    /// win there too).
    slot_entry: Vec<u64>,

    // ---- Huffman fallback (alphabets wider than the 12-bit table) ----
    /// Working memory of the embedded Huffman section.
    huff: CodecScratch,
    /// Widened copy of the input for the fallback encoder, and the decode
    /// target of fallback byte streams.
    syms_u32: Vec<u32>,
}

impl RansScratch {
    /// Create an empty scratch; buffers grow on first use and are then
    /// recycled across calls.
    pub fn new() -> Self {
        RansScratch::default()
    }
}

/// Encode `symbols` into a self-describing rANS stream (fresh scratch).
pub fn rans_encode(symbols: &[u32]) -> Vec<u8> {
    let mut out = Vec::new();
    rans_encode_with(&mut RansScratch::new(), symbols, &mut out);
    out
}

/// [`rans_encode`] into a caller-owned output buffer, reusing `scratch` for
/// every table and the emit buffer. Appends to `out` (callers embed rANS
/// sections inside larger containers).
pub fn rans_encode_with(scratch: &mut RansScratch, symbols: &[u32], out: &mut Vec<u8>) {
    encode_impl(scratch, symbols, out);
}

/// Byte-stream variant of [`rans_encode_with`]: codes the bytes as symbols
/// without widening the input to `u32` first (the ZFP container and the
/// byte-codec pipeline feed multi-megabyte bit streams through here).
pub fn rans_encode_bytes_with(scratch: &mut RansScratch, bytes: &[u8], out: &mut Vec<u8>) {
    encode_impl(scratch, bytes, out);
}

/// Decode a stream produced by [`rans_encode`] (fresh scratch). Returns the
/// symbols and the number of bytes consumed.
pub fn rans_decode(bytes: &[u8]) -> Result<(Vec<u32>, usize), CodecError> {
    let mut out = Vec::new();
    let used = rans_decode_with(&mut RansScratch::new(), bytes, &mut out)?;
    Ok((out, used))
}

/// [`rans_decode`] into a caller-owned symbol buffer (cleared first),
/// reusing `scratch` for the frequency tables and the slot LUT. Returns the
/// number of bytes consumed, so callers can embed the stream in a container.
pub fn rans_decode_with(
    scratch: &mut RansScratch,
    bytes: &[u8],
    out: &mut Vec<u32>,
) -> Result<usize, CodecError> {
    decode_impl(scratch, bytes, u32::MAX, simd_level(), out)
}

/// [`rans_decode_with`] at an explicit SIMD tier (tests and benchmarks —
/// every tier decodes the same bytes to the same symbols and errors).
pub fn rans_decode_with_at(
    scratch: &mut RansScratch,
    level: SimdLevel,
    bytes: &[u8],
    out: &mut Vec<u32>,
) -> Result<usize, CodecError> {
    decode_impl(scratch, bytes, u32::MAX, level, out)
}

/// Byte-stream variant of [`rans_decode_with`]: symbols above 255 in the
/// frequency table (or the fallback section) are rejected as corruption, so
/// the decode loop narrows to `u8` without per-symbol checks.
pub fn rans_decode_bytes_with(
    scratch: &mut RansScratch,
    bytes: &[u8],
    out: &mut Vec<u8>,
) -> Result<usize, CodecError> {
    decode_impl(scratch, bytes, u8::MAX.into(), simd_level(), out)
}

/// [`rans_decode_bytes_with`] at an explicit SIMD tier.
pub fn rans_decode_bytes_with_at(
    scratch: &mut RansScratch,
    level: SimdLevel,
    bytes: &[u8],
    out: &mut Vec<u8>,
) -> Result<usize, CodecError> {
    decode_impl(scratch, bytes, u8::MAX.into(), level, out)
}

/// Encode `symbols` into a self-describing **8-way** interleaved rANS
/// stream (fresh scratch). Same frequency table and Huffman fallback as
/// [`rans_encode`], but eight states round-robin over the symbols and each
/// state emits into its own lane buffer, so the decoder runs eight
/// independent chains (see the module docs for the lane-length header).
pub fn rans8_encode(symbols: &[u32]) -> Vec<u8> {
    let mut out = Vec::new();
    rans8_encode_with(&mut RansScratch::new(), symbols, &mut out);
    out
}

/// [`rans8_encode`] into a caller-owned output buffer, reusing `scratch`.
pub fn rans8_encode_with(scratch: &mut RansScratch, symbols: &[u32], out: &mut Vec<u8>) {
    encode8_impl(scratch, symbols, out);
}

/// Byte-stream variant of [`rans8_encode_with`].
pub fn rans8_encode_bytes_with(scratch: &mut RansScratch, bytes: &[u8], out: &mut Vec<u8>) {
    encode8_impl(scratch, bytes, out);
}

/// Decode a stream produced by [`rans8_encode`] (fresh scratch). Returns
/// the symbols and the number of bytes consumed. 2-way streams (mode 0) are
/// rejected cleanly — the two formats are deliberately not cross-decodable,
/// only the shared Huffman fallback (mode 1) is accepted by both.
pub fn rans8_decode(bytes: &[u8]) -> Result<(Vec<u32>, usize), CodecError> {
    let mut out = Vec::new();
    let used = rans8_decode_with(&mut RansScratch::new(), bytes, &mut out)?;
    Ok((out, used))
}

/// [`rans8_decode`] into a caller-owned symbol buffer (cleared first),
/// reusing `scratch`. Returns the number of bytes consumed.
pub fn rans8_decode_with(
    scratch: &mut RansScratch,
    bytes: &[u8],
    out: &mut Vec<u32>,
) -> Result<usize, CodecError> {
    decode8_impl(scratch, bytes, u32::MAX, simd_level(), out)
}

/// [`rans8_decode_with`] at an explicit SIMD tier (tests and benchmarks —
/// every tier decodes the same bytes to the same symbols and errors).
pub fn rans8_decode_with_at(
    scratch: &mut RansScratch,
    level: SimdLevel,
    bytes: &[u8],
    out: &mut Vec<u32>,
) -> Result<usize, CodecError> {
    decode8_impl(scratch, bytes, u32::MAX, level, out)
}

/// Byte-stream variant of [`rans8_decode_with`].
pub fn rans8_decode_bytes_with(
    scratch: &mut RansScratch,
    bytes: &[u8],
    out: &mut Vec<u8>,
) -> Result<usize, CodecError> {
    decode8_impl(scratch, bytes, u8::MAX.into(), simd_level(), out)
}

/// [`rans8_decode_bytes_with`] at an explicit SIMD tier.
pub fn rans8_decode_bytes_with_at(
    scratch: &mut RansScratch,
    level: SimdLevel,
    bytes: &[u8],
    out: &mut Vec<u8>,
) -> Result<usize, CodecError> {
    decode8_impl(scratch, bytes, u8::MAX.into(), level, out)
}

/// Output element of the generic decode loop; conversion is infallible
/// because the frequency table was validated against the sink's `max_sym`.
trait SinkSym: Copy {
    fn of_sym(sym: u32) -> Self;
}

impl SinkSym for u32 {
    #[inline(always)]
    fn of_sym(sym: u32) -> u32 {
        sym
    }
}

impl SinkSym for u8 {
    #[inline(always)]
    fn of_sym(sym: u32) -> u8 {
        debug_assert!(sym <= 255);
        sym as u8
    }
}

/// Normalize the histogram in `alphabet` to frequencies summing exactly to
/// `SCALE`, every entry at least 1. Deterministic: floor-scaled counts, the
/// deficit granted to the most frequent symbol, any excess shaved from the
/// largest normalized frequencies first (stable on ties).
fn normalize_freqs(alphabet: &[(u32, u64)], freqs: &mut Vec<u32>, order: &mut Vec<u32>) {
    debug_assert!(!alphabet.is_empty() && alphabet.len() <= SCALE as usize);
    let total: u64 = alphabet.iter().map(|&(_, c)| c).sum();
    freqs.clear();
    let mut sum = 0u32;
    for &(_, count) in alphabet {
        let f = ((u128::from(count) << SCALE_BITS) / u128::from(total)) as u32;
        let f = f.max(1);
        freqs.push(f);
        sum += f;
    }
    if sum < SCALE {
        let k = alphabet
            .iter()
            .enumerate()
            .max_by_key(|&(k, &(_, count))| (count, std::cmp::Reverse(k)))
            .map(|(k, _)| k)
            .expect("alphabet is non-empty");
        freqs[k] += SCALE - sum;
    } else if sum > SCALE {
        // Shave from the largest frequencies first; total reducible mass is
        // sum − len ≥ sum − SCALE, so one pass always suffices.
        let mut excess = sum - SCALE;
        order.clear();
        order.extend(0..freqs.len() as u32);
        order.sort_by_key(|&k| std::cmp::Reverse(freqs[k as usize]));
        for &k in order.iter() {
            if excess == 0 {
                break;
            }
            let take = excess.min(freqs[k as usize] - 1);
            freqs[k as usize] -= take;
            excess -= take;
        }
        debug_assert_eq!(excess, 0);
    }
}

/// Shared encode-side table build: alphabet discovery, normalization,
/// reciprocal tables, and the symbol → alphabet-index addressing for the
/// chosen table mode. Returns `None` when the alphabet exceeds the 12-bit
/// table and the caller must take the Huffman fallback. On `Some`, the
/// caller owns restoring the dense-index invariant via [`clear_dense_idx`].
fn build_encode_tables<S: SymbolLike>(
    scratch: &mut RansScratch,
    symbols: &[S],
) -> Option<TableMode> {
    let mode = build_alphabet_into(
        &mut scratch.hist,
        &mut scratch.sym_map,
        &mut scratch.slot_counts,
        &mut scratch.alphabet,
        symbols,
    );
    if scratch.alphabet.len() > SCALE as usize {
        return None;
    }
    normalize_freqs(&scratch.alphabet, &mut scratch.freqs, &mut scratch.norm_order);

    // Encoder tables: cumulative starts + reciprocals per alphabet index,
    // and the symbol → index addressing for the chosen table mode.
    scratch.enc_syms.clear();
    let mut cum = 0u32;
    for &f in &scratch.freqs {
        scratch.enc_syms.push(EncSym::new(cum, f));
        cum += f;
    }
    debug_assert_eq!(cum, SCALE);
    match mode {
        TableMode::Dense { min } => {
            let span = (scratch.alphabet.last().expect("non-empty").0 - min) as usize + 1;
            if scratch.dense_idx.len() < span {
                scratch.dense_idx.resize(span, 0);
            }
            for (k, &(sym, _)) in scratch.alphabet.iter().enumerate() {
                scratch.dense_idx[(sym - min) as usize] = k as u32;
            }
        }
        TableMode::Sparse => {
            scratch.slot_idx.clear();
            scratch.slot_idx.resize(scratch.alphabet.len(), 0);
            for (k, &(sym, _)) in scratch.alphabet.iter().enumerate() {
                let slot = scratch.sym_map.get(sym).expect("alphabet symbol") as usize;
                scratch.slot_idx[slot] = k as u32;
            }
        }
    }
    Some(mode)
}

/// Write the shared `varint alphabet_size (varint symbol, varint freq)*`
/// header, pairs in ascending symbol order.
fn write_freq_table(scratch: &RansScratch, out: &mut Vec<u8>) {
    write_varint(out, scratch.alphabet.len() as u64);
    for (k, &(sym, _)) in scratch.alphabet.iter().enumerate() {
        write_varint(out, u64::from(sym));
        write_varint(out, u64::from(scratch.freqs[k]));
    }
}

/// Restore the all-zero invariant of the dense index table
/// (O(distinct), not O(span)).
fn clear_dense_idx(scratch: &mut RansScratch, mode: TableMode) {
    if let TableMode::Dense { min } = mode {
        for &(sym, _) in &scratch.alphabet {
            scratch.dense_idx[(sym - min) as usize] = 0;
        }
    }
}

/// Too many distinct symbols for a 12-bit table: embed a canonical Huffman
/// stream instead (never reachable from the byte-oriented entry points —
/// 256 ≤ SCALE). Shared by both interleavings, so a fallback stream decodes
/// through either decoder.
fn encode_huffman_fallback<S: SymbolLike>(
    scratch: &mut RansScratch,
    symbols: &[S],
    out: &mut Vec<u8>,
) {
    out.push(MODE_HUFF);
    scratch.syms_u32.clear();
    scratch.syms_u32.extend(symbols.iter().map(|s| s.sym()));
    huffman_encode_with(&mut scratch.huff, &scratch.syms_u32, out);
}

fn encode_impl<S: SymbolLike>(scratch: &mut RansScratch, symbols: &[S], out: &mut Vec<u8>) {
    if symbols.is_empty() {
        out.push(MODE_RANS);
        write_varint(out, 0);
        return;
    }

    let Some(mode) = build_encode_tables(scratch, symbols) else {
        encode_huffman_fallback(scratch, symbols, out);
        return;
    };

    out.push(MODE_RANS);
    write_varint(out, symbols.len() as u64);
    write_freq_table(scratch, out);

    // Encode in reverse (rANS is LIFO) with two interleaved states: the
    // symbol's index parity selects its state, so the decoder can alternate
    // states while walking forward. Both states share one emit stack.
    let rev = &mut scratch.rev;
    rev.clear();
    let mut x0 = RANS_L;
    let mut x1 = RANS_L;
    let enc_syms = &scratch.enc_syms;
    let mut i = symbols.len();
    macro_rules! sym_of {
        ($s:expr) => {{
            let k = match mode {
                TableMode::Dense { min } => scratch.dense_idx[($s.sym() - min) as usize],
                TableMode::Sparse => {
                    let slot = scratch.sym_map.get($s.sym()).expect("alphabet covers input");
                    scratch.slot_idx[slot as usize]
                }
            };
            &enc_syms[k as usize]
        }};
    }
    if i & 1 == 1 {
        // Odd length: the highest index is even and threads state 0.
        i -= 1;
        x0 = enc_put(x0, rev, sym_of!(symbols[i]));
    }
    while i >= 2 {
        // Two independent dependency chains per iteration: index i−1 is
        // odd (state 1), index i−2 even (state 0).
        i -= 1;
        x1 = enc_put(x1, rev, sym_of!(symbols[i]));
        i -= 1;
        x0 = enc_put(x0, rev, sym_of!(symbols[i]));
    }
    // Flush so the reversed stream opens with state0 then state1, LE each.
    rev.extend_from_slice(&x1.to_be_bytes());
    rev.extend_from_slice(&x0.to_be_bytes());
    rev.reverse();
    write_varint(out, rev.len() as u64);
    out.extend_from_slice(rev);

    clear_dense_idx(scratch, mode);
}

fn encode8_impl<S: SymbolLike>(scratch: &mut RansScratch, symbols: &[S], out: &mut Vec<u8>) {
    if symbols.is_empty() {
        out.push(MODE_RANS8);
        write_varint(out, 0);
        return;
    }

    let Some(mode) = build_encode_tables(scratch, symbols) else {
        encode_huffman_fallback(scratch, symbols, out);
        return;
    };

    out.push(MODE_RANS8);
    write_varint(out, symbols.len() as u64);
    write_freq_table(scratch, out);

    // Encode in reverse (rANS is LIFO) with eight round-robin states:
    // symbol index i threads state i mod 8, and each state pushes its
    // renorm bytes onto its **own** lane stack, so the decoder walks eight
    // independent byte cursors instead of one shared stream.
    let enc_syms = &scratch.enc_syms;
    let dense_idx = &scratch.dense_idx;
    let slot_idx = &scratch.slot_idx;
    let sym_map = &scratch.sym_map;
    let lanes = &mut scratch.lane_rev;
    for lane in lanes.iter_mut() {
        lane.clear();
    }
    let mut xs = [RANS_L; LANES];
    for i in (0..symbols.len()).rev() {
        let k = i & (LANES - 1);
        let idx = match mode {
            TableMode::Dense { min } => dense_idx[(symbols[i].sym() - min) as usize],
            TableMode::Sparse => {
                let slot = sym_map.get(symbols[i].sym()).expect("alphabet covers input");
                slot_idx[slot as usize]
            }
        };
        xs[k] = enc_put(xs[k], &mut lanes[k], &enc_syms[idx as usize]);
    }
    // Flush and reverse each lane so it opens with its u32-LE seed state
    // followed by that lane's renorm bytes in decode order.
    let mut payload_len = 0u64;
    for (lane, &x) in lanes.iter_mut().zip(xs.iter()) {
        lane.extend_from_slice(&x.to_be_bytes());
        lane.reverse();
        payload_len += lane.len() as u64;
    }
    write_varint(out, payload_len);
    for lane in lanes.iter() {
        write_varint(out, lane.len() as u64);
    }
    for lane in lanes.iter() {
        out.extend_from_slice(lane);
    }

    clear_dense_idx(scratch, mode);
}

/// Embedded Huffman fallback decode: into the widened scratch buffer, then
/// narrowed (checked against the sink's symbol ceiling). Shared by both
/// interleavings' decoders.
fn decode_huffman_fallback<T: SinkSym>(
    scratch: &mut RansScratch,
    bytes: &[u8],
    mut offset: usize,
    max_sym: u32,
    out: &mut Vec<T>,
) -> Result<usize, CodecError> {
    let used = huffman_decode_with(&mut scratch.huff, &bytes[offset..], &mut scratch.syms_u32)?;
    offset += used;
    out.reserve(scratch.syms_u32.len());
    for &s in &scratch.syms_u32 {
        if s > max_sym {
            return Err(CodecError::Corrupt(format!("symbol {s} exceeds the sink range")));
        }
        out.push(T::of_sym(s));
    }
    Ok(offset)
}

/// Parse the shared frequency-table header into the decode tables: a
/// bounded parse (each entry costs at least two stream bytes, and the size
/// itself is capped at 4096), validating the sink ceiling and the exact
/// 12-bit sum before any LUT fill. Returns `(alphabet_size, new_offset)`.
fn parse_freq_table(
    scratch: &mut RansScratch,
    bytes: &[u8],
    mut offset: usize,
    max_sym: u32,
) -> Result<(usize, usize), CodecError> {
    let (alphabet_size, used) = read_varint(&bytes[offset..])?;
    offset += used;
    if alphabet_size == 0 || alphabet_size > u64::from(SCALE) {
        return Err(CodecError::Corrupt(format!(
            "rans alphabet size {alphabet_size} outside 1..={SCALE}"
        )));
    }
    let alphabet_size = alphabet_size as usize;

    scratch.dec_syms.clear();
    scratch.dec_freq.clear();
    scratch.dec_cum.clear();
    let mut cum = 0u32;
    for _ in 0..alphabet_size {
        let (sym, used) = read_varint(&bytes[offset..])?;
        offset += used;
        let (freq, used) = read_varint(&bytes[offset..])?;
        offset += used;
        if sym > u64::from(max_sym) {
            return Err(CodecError::Corrupt(format!("symbol {sym} exceeds the sink range")));
        }
        if freq == 0 || freq > u64::from(SCALE) {
            return Err(CodecError::Corrupt(format!("invalid rans frequency {freq}")));
        }
        scratch.dec_syms.push(sym as u32);
        scratch.dec_freq.push(freq as u16);
        scratch.dec_cum.push(cum as u16);
        cum += freq as u32;
        if cum > SCALE {
            return Err(CodecError::Corrupt(format!(
                "rans frequencies sum past {SCALE} at symbol {sym}"
            )));
        }
    }
    if cum != SCALE {
        return Err(CodecError::Corrupt(format!(
            "rans frequencies sum to {cum}, expected {SCALE}"
        )));
    }
    Ok((alphabet_size, offset))
}

/// Cap a claimed multi-symbol count by what the payload could possibly
/// encode: every symbol of a table with `max_freq ≤ SCALE − 1` costs at
/// least ~log2(SCALE / max_freq) bits, so a generous multiple of the
/// payload's bit budget bounds the count — honest streams sit well inside
/// it, while a forged header can no longer turn a few bytes into an absurd
/// allocation or decode loop.
fn check_symbol_count_plausible(
    scratch: &RansScratch,
    payload_len: usize,
    n_symbols: u64,
) -> Result<(), CodecError> {
    let max_freq = scratch.dec_freq.iter().map(|&f| u64::from(f)).max().expect("non-empty table");
    let budget_bits = payload_len as u64 * 8 + 64;
    let max_symbols =
        budget_bits.saturating_mul(3 * u64::from(SCALE) / (u64::from(SCALE) - max_freq));
    if n_symbols > max_symbols {
        return Err(CodecError::Corrupt(format!(
            "implausible symbol count {n_symbols} for a {payload_len}-byte payload"
        )));
    }
    Ok(())
}

fn decode_impl<T: SinkSym>(
    scratch: &mut RansScratch,
    bytes: &[u8],
    max_sym: u32,
    level: SimdLevel,
    out: &mut Vec<T>,
) -> Result<usize, CodecError> {
    out.clear();
    if bytes.is_empty() {
        return Err(CodecError::UnexpectedEof);
    }
    let mode = bytes[0];
    let mut offset = 1usize;
    if mode == MODE_HUFF {
        return decode_huffman_fallback(scratch, bytes, offset, max_sym, out);
    }
    if mode != MODE_RANS {
        return Err(CodecError::Corrupt(format!("unknown rans mode {mode}")));
    }

    let (n_symbols, used) = read_varint(&bytes[offset..])?;
    offset += used;
    if n_symbols == 0 {
        return Ok(offset);
    }

    let (alphabet_size, new_offset) = parse_freq_table(scratch, bytes, offset, max_sym)?;
    offset = new_offset;

    let (payload_len, used) = read_varint(&bytes[offset..])?;
    offset += used;
    let payload_len = payload_len as usize;
    if bytes.len() < offset || bytes.len() - offset < payload_len {
        return Err(CodecError::UnexpectedEof);
    }
    let payload = &bytes[offset..offset + payload_len];
    let consumed = offset + payload_len;
    if payload.len() < 8 {
        return Err(CodecError::Corrupt("rans payload too short for two states".into()));
    }
    let mut x0 = u32::from_le_bytes(payload[0..4].try_into().expect("4 bytes"));
    let mut x1 = u32::from_le_bytes(payload[4..8].try_into().expect("4 bytes"));
    if x0 < RANS_L || x1 < RANS_L {
        return Err(CodecError::Corrupt("rans state below the renormalization interval".into()));
    }
    let mut ptr = 8usize;

    // A single-symbol alphabet is the one genuinely zero-cost stream shape
    // (freq == SCALE makes every coding step the identity): the payload is
    // exactly the two seed states and the count alone sets the output size.
    // Handle it as a bulk fill behind an absolute run cap — without the
    // per-byte coupling a forged count would otherwise exploit, and without
    // false-rejecting huge constant inputs the encoder legitimately emits.
    if alphabet_size == 1 {
        if n_symbols > MAX_DEGENERATE_RUN {
            return Err(CodecError::Corrupt(format!(
                "single-symbol run of {n_symbols} exceeds the {MAX_DEGENERATE_RUN} cap"
            )));
        }
        if payload.len() != 8 || x0 != RANS_L || x1 != RANS_L {
            return Err(CodecError::Corrupt(
                "single-symbol payload must be exactly the two seed states".into(),
            ));
        }
        out.resize(n_symbols as usize, T::of_sym(scratch.dec_syms[0]));
        return Ok(consumed);
    }

    // Every other alphabet has max_freq ≤ SCALE − 1, so each symbol costs
    // real information (state flush included); coding overhead only makes
    // honest streams larger.
    check_symbol_count_plausible(scratch, payload.len(), n_symbols)?;
    let n_symbols = n_symbols as usize;

    // The reserve is a hint bounded by the input; near-zero-entropy streams
    // may decode more (amortized push growth covers the rest).
    out.reserve(n_symbols.min(payload.len().saturating_mul(8) + 64));

    #[cfg(target_arch = "x86_64")]
    if level >= SimdLevel::Sse4 {
        return decode_payload_fast(scratch, payload, n_symbols, x0, x1, out).map(|()| consumed);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = level;

    // Slot LUT: every 12-bit slot maps to exactly one alphabet index (the
    // exact-sum check above guarantees full coverage).
    scratch.slot_lut.clear();
    scratch.slot_lut.resize(SCALE as usize, 0);
    for k in 0..alphabet_size {
        let lo = u32::from(scratch.dec_cum[k]) as usize;
        let hi = lo + u32::from(scratch.dec_freq[k]) as usize;
        for entry in &mut scratch.slot_lut[lo..hi] {
            *entry = k as u16;
        }
    }

    let lut = &scratch.slot_lut;
    let dec_syms = &scratch.dec_syms;
    let dec_freq = &scratch.dec_freq;
    let dec_cum = &scratch.dec_cum;
    macro_rules! step {
        ($x:ident) => {{
            let slot = $x & (SCALE - 1);
            let k = lut[slot as usize] as usize;
            out.push(T::of_sym(dec_syms[k]));
            $x = u32::from(dec_freq[k]) * ($x >> SCALE_BITS) + slot - u32::from(dec_cum[k]);
            while $x < RANS_L {
                if ptr >= payload.len() {
                    return Err(CodecError::UnexpectedEof);
                }
                $x = ($x << 8) | u32::from(payload[ptr]);
                ptr += 1;
            }
        }};
    }
    let pairs = n_symbols / 2;
    for _ in 0..pairs {
        step!(x0);
        step!(x1);
    }
    if n_symbols & 1 == 1 {
        step!(x0);
    }

    // A well-formed stream ends with both states back at their seed and the
    // payload fully drained; anything else is corruption.
    if x0 != RANS_L || x1 != RANS_L {
        return Err(CodecError::Corrupt("rans states did not return to the seed".into()));
    }
    if ptr != payload.len() {
        return Err(CodecError::Corrupt(format!(
            "rans payload has {} undecoded trailing bytes",
            payload.len() - ptr
        )));
    }
    Ok(consumed)
}

/// Fill the fused slot → `symbol << 32 | freq << 16 | cum` LUT from the
/// parsed decode tables (every 12-bit slot maps to exactly one alphabet
/// index — the exact-sum check of [`parse_freq_table`] guarantees full
/// coverage).
fn build_slot_entries(scratch: &mut RansScratch) {
    scratch.slot_entry.clear();
    scratch.slot_entry.resize(SCALE as usize, 0);
    for k in 0..scratch.dec_syms.len() {
        let freq = u32::from(scratch.dec_freq[k]);
        let cum = u32::from(scratch.dec_cum[k]);
        let fused =
            (u64::from(scratch.dec_syms[k]) << 32) | (u64::from(freq) << 16) | u64::from(cum);
        for entry in &mut scratch.slot_entry[cum as usize..(cum + freq) as usize] {
            *entry = fused;
        }
    }
}

fn decode8_impl<T: SinkSym>(
    scratch: &mut RansScratch,
    bytes: &[u8],
    max_sym: u32,
    level: SimdLevel,
    out: &mut Vec<T>,
) -> Result<usize, CodecError> {
    out.clear();
    if bytes.is_empty() {
        return Err(CodecError::UnexpectedEof);
    }
    let mode = bytes[0];
    let mut offset = 1usize;
    if mode == MODE_HUFF {
        return decode_huffman_fallback(scratch, bytes, offset, max_sym, out);
    }
    if mode != MODE_RANS8 {
        // Mode 0 (a 2-way stream) lands here too: the formats are
        // deliberately not cross-decodable.
        return Err(CodecError::Corrupt(format!("unknown rans8 mode {mode}")));
    }

    let (n_symbols, used) = read_varint(&bytes[offset..])?;
    offset += used;
    if n_symbols == 0 {
        return Ok(offset);
    }

    let (alphabet_size, new_offset) = parse_freq_table(scratch, bytes, offset, max_sym)?;
    offset = new_offset;

    let (payload_len, used) = read_varint(&bytes[offset..])?;
    offset += used;
    let payload_len = payload_len as usize;

    // Lane-length header: eight varints that must sum to the payload length
    // (a mismatch means a forged or mis-stitched header) and each cover at
    // least that lane's u32 seed state.
    let mut lane_len = [0usize; LANES];
    let mut lane_sum = 0u64;
    for len in lane_len.iter_mut() {
        let (l, used) = read_varint(&bytes[offset..])?;
        offset += used;
        *len = l as usize;
        lane_sum += l;
    }
    if lane_sum != payload_len as u64 {
        return Err(CodecError::Corrupt(format!(
            "rans8 lane lengths sum to {lane_sum}, expected the {payload_len}-byte payload"
        )));
    }
    if bytes.len() < offset || bytes.len() - offset < payload_len {
        return Err(CodecError::UnexpectedEof);
    }
    let payload = &bytes[offset..offset + payload_len];
    let consumed = offset + payload_len;

    // Per-lane byte regions and seed states.
    let mut ptrs = [0usize; LANES]; // next renorm byte, per lane
    let mut ends = [0usize; LANES]; // exclusive end of the lane's region
    let mut xs = [0u32; LANES];
    let mut at = 0usize;
    for k in 0..LANES {
        if lane_len[k] < 4 {
            return Err(CodecError::Corrupt(format!(
                "rans8 lane {k} is {} bytes, too short for its seed state",
                lane_len[k]
            )));
        }
        xs[k] = u32::from_le_bytes(payload[at..at + 4].try_into().expect("4 bytes"));
        if xs[k] < RANS_L {
            return Err(CodecError::Corrupt(
                "rans state below the renormalization interval".into(),
            ));
        }
        ptrs[k] = at + 4;
        at += lane_len[k];
        ends[k] = at;
    }

    // Single-symbol alphabet: the zero-cost stream shape (freq == SCALE
    // makes every coding step the identity) — the payload is exactly the
    // eight seed states and the count alone sets the output size. Bulk-fill
    // behind the same absolute run cap as the 2-way format.
    if alphabet_size == 1 {
        if n_symbols > MAX_DEGENERATE_RUN {
            return Err(CodecError::Corrupt(format!(
                "single-symbol run of {n_symbols} exceeds the {MAX_DEGENERATE_RUN} cap"
            )));
        }
        if payload.len() != 4 * LANES || xs.iter().any(|&x| x != RANS_L) {
            return Err(CodecError::Corrupt(
                "single-symbol payload must be exactly the eight seed states".into(),
            ));
        }
        out.resize(n_symbols as usize, T::of_sym(scratch.dec_syms[0]));
        return Ok(consumed);
    }

    check_symbol_count_plausible(scratch, payload.len(), n_symbols)?;
    let n_symbols = n_symbols as usize;

    // The reserve is a hint bounded by the input; near-zero-entropy streams
    // may decode more (amortized push growth covers the rest).
    out.reserve(n_symbols.min(payload.len().saturating_mul(8) + 64));

    build_slot_entries(scratch);

    #[cfg(target_arch = "x86_64")]
    if level >= SimdLevel::Sse4 {
        return decode8_payload_fast(
            scratch, payload, n_symbols, level, &mut ptrs, &ends, &mut xs, out,
        )
        .map(|()| consumed);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = level;

    // Scalar tier: checked round-robin over the eight lanes with the fused
    // slot LUT.
    decode8_symbols_careful(
        &scratch.slot_entry,
        payload,
        &mut ptrs,
        &ends,
        &mut xs,
        n_symbols,
        out,
    )?;
    check8_final(&xs, &ptrs, &ends)?;
    Ok(consumed)
}

/// Checked round-robin decode of `count` symbols over the fused slot
/// entries, starting at lane 0 (callers only enter on round boundaries):
/// the scalar 8-way tier, and the payload-tail / truncated-stream companion
/// of the unchecked chunk loop — it reports `UnexpectedEof` exactly where
/// the unchecked loop's byte budget would have been violated.
fn decode8_symbols_careful<T: SinkSym>(
    entries: &[u64],
    payload: &[u8],
    ptrs: &mut [usize; LANES],
    ends: &[usize; LANES],
    xs: &mut [u32; LANES],
    count: usize,
    out: &mut Vec<T>,
) -> Result<(), CodecError> {
    for j in 0..count {
        let k = j & (LANES - 1);
        let mut x = xs[k];
        let slot = x & (SCALE - 1);
        let e = entries[slot as usize];
        out.push(T::of_sym((e >> 32) as u32));
        x = ((e >> 16) & 0xFFFF) as u32 * (x >> SCALE_BITS) + slot - (e & 0xFFFF) as u32;
        while x < RANS_L {
            if ptrs[k] >= ends[k] {
                return Err(CodecError::UnexpectedEof);
            }
            x = (x << 8) | u32::from(payload[ptrs[k]]);
            ptrs[k] += 1;
        }
        xs[k] = x;
    }
    Ok(())
}

/// The well-formedness epilogue of an 8-way decode: every lane's state back
/// at the seed and every lane's byte region fully drained.
fn check8_final(
    xs: &[u32; LANES],
    ptrs: &[usize; LANES],
    ends: &[usize; LANES],
) -> Result<(), CodecError> {
    if xs.iter().any(|&x| x != RANS_L) {
        return Err(CodecError::Corrupt("rans8 lane states did not return to the seed".into()));
    }
    for k in 0..LANES {
        if ptrs[k] != ends[k] {
            return Err(CodecError::Corrupt(format!(
                "rans8 lane {k} has {} undecoded trailing bytes",
                ends[k] - ptrs[k]
            )));
        }
    }
    Ok(())
}

/// The dispatched (≥ SSE4.1) 8-way decode driver. Identical observable
/// behaviour to the scalar round-robin loop — same symbols, same errors —
/// structured for throughput: the loop runs in chunks of full 8-symbol
/// rounds with a **per-lane byte-budget check** up front (a decoded symbol
/// renormalizes by at most two bytes from its own lane, so a chunk holding
/// `2 × rounds` spare bytes in every lane needs no per-byte bounds checks),
/// writing symbols into `out`'s reserved spare capacity. Chunks near any
/// lane's end — including every stream truncated mid-decode — take the
/// checked careful loop instead.
// Sanctioned `unsafe_code` waiver (see `crate::dispatch`): this driver owns
// the byte-budget and capacity checks the unchecked inner loop relies on.
#[allow(unsafe_code)]
#[allow(clippy::too_many_arguments)]
#[cfg(target_arch = "x86_64")]
fn decode8_payload_fast<T: SinkSym>(
    scratch: &mut RansScratch,
    payload: &[u8],
    n_symbols: usize,
    level: SimdLevel,
    ptrs: &mut [usize; LANES],
    ends: &[usize; LANES],
    xs: &mut [u32; LANES],
    out: &mut Vec<T>,
) -> Result<(), CodecError> {
    let entries = &scratch.slot_entry;
    let mut rounds = n_symbols / LANES;
    const CHUNK_ROUNDS: usize = 128;
    while rounds > 0 {
        let take = rounds.min(CHUNK_ROUNDS);
        out.reserve(take * LANES);
        if (0..LANES).all(|k| ends[k] - ptrs[k] >= take * 2) {
            // SAFETY: the dispatched tiers are only reachable on hosts whose
            // feature detection confirmed them; the per-lane byte budget
            // just checked keeps every unchecked payload read inside its
            // lane's region (≤ 2 bytes per symbol), and the reserve covers
            // the raw output writes.
            unsafe {
                if level >= SimdLevel::Avx2 {
                    simd8::decode_rounds_avx2(entries, payload, ptrs, xs, take, out);
                } else {
                    simd8::decode_rounds_sse4(entries, payload, ptrs, xs, take, out);
                }
            }
        } else {
            decode8_symbols_careful(entries, payload, ptrs, ends, xs, take * LANES, out)?;
        }
        rounds -= take;
    }
    // Tail: the last n mod 8 symbols on lanes 0.. (checked reads).
    decode8_symbols_careful(entries, payload, ptrs, ends, xs, n_symbols % LANES, out)?;
    check8_final(xs, ptrs, ends)
}

/// The SSE4.1 decode loop for multi-symbol streams. Identical observable
/// behaviour to the scalar loop — same symbols, same consumed bytes, same
/// errors — structured for throughput:
///
/// * **fused slot entries** (`symbol << 32 | freq << 16 | cum` per 12-bit
///   slot) make each symbol one 64-bit table load instead of four dependent
///   ones,
/// * the two interleaved states update **in one 128-bit register**
///   (`pmulld`/`psubd`/`paddd` across both lanes),
/// * the loop runs in chunks with a byte-budget check up front: a decoded
///   symbol renormalizes by at most two payload bytes (the post-step state
///   is ≥ 2^11; two byte injections reach 2^23), so a chunk holding
///   `4 × pairs` spare payload bytes needs no per-byte bounds checks at
///   all. Chunks near the payload's end — including every stream truncated
///   mid-decode — take the checked careful loop instead, which reports
///   `UnexpectedEof` exactly where the scalar loop would.
// Sanctioned `unsafe_code` waiver (see `crate::dispatch`): this driver owns
// the byte-budget and capacity checks the unchecked inner loop relies on.
#[allow(unsafe_code)]
#[cfg(target_arch = "x86_64")]
fn decode_payload_fast<T: SinkSym>(
    scratch: &mut RansScratch,
    payload: &[u8],
    n_symbols: usize,
    mut x0: u32,
    mut x1: u32,
    out: &mut Vec<T>,
) -> Result<(), CodecError> {
    build_slot_entries(scratch);
    let entries = &scratch.slot_entry;

    let mut ptr = 8usize;
    let mut pairs = n_symbols / 2;
    const CHUNK_PAIRS: usize = 512;
    while pairs > 0 {
        let take = pairs.min(CHUNK_PAIRS);
        out.reserve(take * 2);
        if payload.len() - ptr >= take * 4 {
            // SAFETY: `level >= Sse4` is only reachable on hosts whose
            // detection confirmed SSE4.1; the byte budget just checked keeps
            // every unchecked payload read in bounds (≤ 4 bytes per pair),
            // and the reserve covers the raw output writes.
            unsafe {
                let (nx0, nx1, nptr) =
                    simd::decode_pairs_unchecked(entries, payload, ptr, x0, x1, take, out);
                x0 = nx0;
                x1 = nx1;
                ptr = nptr;
            }
        } else {
            decode_pairs_careful(entries, payload, &mut ptr, &mut x0, &mut x1, take, out)?;
        }
        pairs -= take;
    }
    if n_symbols & 1 == 1 {
        // Odd tail: one more symbol on state 0 (checked reads).
        let slot = x0 & (SCALE - 1);
        let e = entries[slot as usize];
        out.push(T::of_sym((e >> 32) as u32));
        x0 = ((e >> 16) & 0xFFFF) as u32 * (x0 >> SCALE_BITS) + slot - (e & 0xFFFF) as u32;
        while x0 < RANS_L {
            if ptr >= payload.len() {
                return Err(CodecError::UnexpectedEof);
            }
            x0 = (x0 << 8) | u32::from(payload[ptr]);
            ptr += 1;
        }
    }

    if x0 != RANS_L || x1 != RANS_L {
        return Err(CodecError::Corrupt("rans states did not return to the seed".into()));
    }
    if ptr != payload.len() {
        return Err(CodecError::Corrupt(format!(
            "rans payload has {} undecoded trailing bytes",
            payload.len() - ptr
        )));
    }
    Ok(())
}

/// Checked-read pair loop over the fused entries — the payload-tail (and
/// truncated-stream) companion of [`simd::decode_pairs_unchecked`].
#[cfg(target_arch = "x86_64")]
fn decode_pairs_careful<T: SinkSym>(
    entries: &[u64],
    payload: &[u8],
    ptr: &mut usize,
    x0: &mut u32,
    x1: &mut u32,
    pairs: usize,
    out: &mut Vec<T>,
) -> Result<(), CodecError> {
    macro_rules! step {
        ($x:expr) => {{
            let slot = $x & (SCALE - 1);
            let e = entries[slot as usize];
            out.push(T::of_sym((e >> 32) as u32));
            $x = ((e >> 16) & 0xFFFF) as u32 * ($x >> SCALE_BITS) + slot - (e & 0xFFFF) as u32;
            while $x < RANS_L {
                if *ptr >= payload.len() {
                    return Err(CodecError::UnexpectedEof);
                }
                $x = ($x << 8) | u32::from(payload[*ptr]);
                *ptr += 1;
            }
        }};
    }
    for _ in 0..pairs {
        step!(*x0);
        step!(*x1);
    }
    Ok(())
}

#[cfg(target_arch = "x86_64")]
mod simd {
    // Sanctioned `unsafe_code` waiver (see `crate::dispatch`): `core::arch`
    // intrinsics are unsafe by definition, the callers establish the byte
    // budget and capacity the unchecked accesses rely on, and the
    // bit-identity suite pins scalar equivalence.
    #![allow(unsafe_code)]

    use super::{SinkSym, RANS_L, SCALE, SCALE_BITS};

    /// Decode `pairs` interleaved symbol pairs with no bounds checks: each
    /// state takes the fused-entry `freq·(x >> 12) + slot − cum` update in
    /// scalar registers (the two chains are independent, so they retire in
    /// parallel on any superscalar core), renormalization reads payload
    /// bytes unchecked, and symbols are written straight into `out`'s spare
    /// capacity. Returns the updated `(x0, x1, ptr)`.
    ///
    /// An earlier revision carried both states through one 128-bit register
    /// (`pmulld`/`psubd`/`paddd` across two lanes); profiling showed the
    /// per-pair GPR↔XMM transfers (`_mm_set_epi32` in, `_mm_extract_epi32`
    /// out for the data-dependent renormalization) cost more than the
    /// two-lane arithmetic saved, so the dispatched tier's win over the
    /// portable loop comes from the fused single-load LUT and the
    /// bounds-check-free inner loop, compiled with SSE4.1 codegen enabled.
    ///
    /// # Safety
    /// Requires SSE4.1, `payload.len() - ptr ≥ 4 · pairs`, spare capacity of
    /// at least `2 · pairs` in `out`, every `entries` slot filled for a
    /// 12-bit slot index, and `x0, x1 ≥ RANS_L` (the caller-validated state
    /// invariant that bounds renormalization at two bytes per symbol).
    #[target_feature(enable = "sse4.1")]
    pub(super) unsafe fn decode_pairs_unchecked<T: SinkSym>(
        entries: &[u64],
        payload: &[u8],
        mut ptr: usize,
        mut x0: u32,
        mut x1: u32,
        pairs: usize,
        out: &mut Vec<T>,
    ) -> (u32, u32, usize) {
        debug_assert!(payload.len() - ptr >= pairs * 4);
        debug_assert!(out.capacity() - out.len() >= pairs * 2);
        debug_assert_eq!(entries.len(), SCALE as usize);
        let payload_base = payload.as_ptr();
        let entries_base = entries.as_ptr();
        let out_len = out.len();
        let out_base = out.as_mut_ptr().add(out_len);
        for j in 0..pairs {
            let slot0 = x0 & (SCALE - 1);
            let slot1 = x1 & (SCALE - 1);
            let e0 = *entries_base.add(slot0 as usize);
            let e1 = *entries_base.add(slot1 as usize);
            out_base.add(2 * j).write(T::of_sym((e0 >> 32) as u32));
            out_base.add(2 * j + 1).write(T::of_sym((e1 >> 32) as u32));
            // Low halves of the fused entries: freq << 16 | cum, per state.
            x0 = ((e0 >> 16) & 0xFFFF) as u32 * (x0 >> SCALE_BITS) + slot0 - (e0 & 0xFFFF) as u32;
            x1 = ((e1 >> 16) & 0xFFFF) as u32 * (x1 >> SCALE_BITS) + slot1 - (e1 & 0xFFFF) as u32;
            // Renormalize: at most two byte injections per state (post-step
            // states are ≥ 2^11), fully unrolled, reads covered by the
            // caller's byte budget.
            if x0 < RANS_L {
                x0 = (x0 << 8) | u32::from(*payload_base.add(ptr));
                ptr += 1;
                if x0 < RANS_L {
                    x0 = (x0 << 8) | u32::from(*payload_base.add(ptr));
                    ptr += 1;
                }
            }
            if x1 < RANS_L {
                x1 = (x1 << 8) | u32::from(*payload_base.add(ptr));
                ptr += 1;
                if x1 < RANS_L {
                    x1 = (x1 << 8) | u32::from(*payload_base.add(ptr));
                    ptr += 1;
                }
            }
        }
        out.set_len(out_len + pairs * 2);
        (x0, x1, ptr)
    }
}

#[cfg(target_arch = "x86_64")]
mod simd8 {
    // Sanctioned `unsafe_code` waiver (see `crate::dispatch`): `core::arch`
    // intrinsics are unsafe by definition, the caller establishes the
    // per-lane byte budget and output capacity the unchecked accesses rely
    // on, and the tier-identity suite pins scalar equivalence.
    #![allow(unsafe_code)]

    use super::{SinkSym, LANES, RANS_L, SCALE, SCALE_BITS};

    /// Decode `rounds` full 8-symbol rounds with no bounds checks: eight
    /// independent state chains in scalar registers, fully unrolled per
    /// round, each refilling from its own lane cursor. The chains have no
    /// cross dependencies, so they retire in parallel on any superscalar
    /// core — this is where the 8-way format's decode win over the 2-way
    /// format comes from even before vector ALUs get involved.
    ///
    /// The refill is **branchless**: every step reads two big-endian bytes
    /// at the lane cursor unconditionally, derives the needed injection
    /// count from the renormalization thresholds (`x < 2^23` needs one
    /// byte, `x < 2^15` a second — post-step states are ≥ 2^11, so two
    /// always suffice), and shifts in exactly that many. A branchy refill
    /// mispredicts roughly every other symbol on entropy-shaped data (the
    /// per-symbol byte count is what the coder randomizes!), and those
    /// flushes cost more than the always-taken 2-byte load.
    ///
    /// # Safety
    /// Requires SSE4.1 (for the wrapper's codegen), a spare capacity of at
    /// least `8 · rounds` in `out`, every `entries` slot filled for a
    /// 12-bit slot index, all states `≥ RANS_L`, and `rounds · 2` readable
    /// payload bytes remaining in **every** lane region past its cursor —
    /// the caller-validated budget that both bounds renormalization and
    /// keeps the unconditional 2-byte read inside the lane (a round
    /// consuming `c ≤ 2` bytes leaves the next round's read at most
    /// `2·rounds` past the chunk start).
    #[inline(always)]
    unsafe fn decode_rounds_body<T: SinkSym>(
        entries: &[u64],
        payload: &[u8],
        ptrs: &mut [usize; LANES],
        xs: &mut [u32; LANES],
        rounds: usize,
        out: &mut Vec<T>,
    ) {
        debug_assert!(out.capacity() - out.len() >= rounds * LANES);
        debug_assert_eq!(entries.len(), SCALE as usize);
        let eb = entries.as_ptr();
        let pb = payload.as_ptr();
        let out_len = out.len();
        let ob = out.as_mut_ptr().add(out_len);
        let mut x = *xs;
        let mut p = *ptrs;
        for r in 0..rounds {
            macro_rules! lane {
                ($k:literal) => {{
                    let slot = x[$k] & (SCALE - 1);
                    let e = *eb.add(slot as usize);
                    ob.add(r * LANES + $k).write(T::of_sym((e >> 32) as u32));
                    let nx = ((e >> 16) & 0xFFFF) as u32 * (x[$k] >> SCALE_BITS) + slot
                        - (e & 0xFFFF) as u32;
                    let b = pb.add(p[$k]);
                    let two = (u32::from(*b) << 8) | u32::from(*b.add(1));
                    let n = usize::from(nx < RANS_L) + usize::from(nx < (1 << 15));
                    x[$k] = (nx << (8 * n)) | (two >> (16 - 8 * n));
                    p[$k] += n;
                }};
            }
            lane!(0);
            lane!(1);
            lane!(2);
            lane!(3);
            lane!(4);
            lane!(5);
            lane!(6);
            lane!(7);
        }
        out.set_len(out_len + rounds * LANES);
        *xs = x;
        *ptrs = p;
    }

    /// The SSE4.1 tier: the eight-chain body compiled with SSE4.1 codegen.
    ///
    /// # Safety
    /// See [`decode_rounds_body`]; additionally requires SSE4.1.
    #[target_feature(enable = "sse4.1")]
    pub(super) unsafe fn decode_rounds_sse4<T: SinkSym>(
        entries: &[u64],
        payload: &[u8],
        ptrs: &mut [usize; LANES],
        xs: &mut [u32; LANES],
        rounds: usize,
        out: &mut Vec<T>,
    ) {
        decode_rounds_body(entries, payload, ptrs, xs, rounds, out);
    }

    /// The AVX2 tier: all eight states live in two 4×u64 vectors — two
    /// **independent** dependency chains, which matters more than lane
    /// economy: a round's states feed the next round's gathers, so each
    /// vector is one serial chain and two of them overlap the gather+
    /// multiply latency. Per round and half, a slot mask and a fused-entry
    /// gather (`_mm256_i64gather_epi64`) resolve four table loads in one
    /// instruction, and the `freq · (x >> 12) + slot − cum` update runs as
    /// 4-wide `vpmuludq`/`vpaddq`/`vpsubq` (freq ≤ 2^12 and `x >> 12` <
    /// 2^19, so the 32×32→64 multiply never overflows). Each half then
    /// spills to a lane array for the branchless scalar byte refill (each
    /// lane reads a data-dependent count from its own cursor, which no
    /// gather expresses) and reloads.
    ///
    /// Two earlier revisions inform this shape: one 8×u32 state vector
    /// halved the arithmetic op count but also halved the chain count and
    /// measured ~20% slower end to end, and gating the refill spill behind
    /// a `vpcmpgtq`+`vpmovmskb` "no lane needs bytes" fast path
    /// mispredicted constantly on entropy-shaped data (the per-symbol byte
    /// count is exactly what the coder randomizes), costing nearly 2× the
    /// unconditional spill/reload it saved.
    ///
    /// # Safety
    /// See [`decode_rounds_body`]; additionally requires AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn decode_rounds_avx2<T: SinkSym>(
        entries: &[u64],
        payload: &[u8],
        ptrs: &mut [usize; LANES],
        xs: &mut [u32; LANES],
        rounds: usize,
        out: &mut Vec<T>,
    ) {
        use core::arch::x86_64::*;
        debug_assert!(out.capacity() - out.len() >= rounds * LANES);
        debug_assert_eq!(entries.len(), SCALE as usize);
        let eb = entries.as_ptr();
        let pb = payload.as_ptr();
        let out_len = out.len();
        let ob = out.as_mut_ptr().add(out_len);
        let mut p = *ptrs;
        let mut x_lo = _mm256_setr_epi64x(
            i64::from(xs[0]),
            i64::from(xs[1]),
            i64::from(xs[2]),
            i64::from(xs[3]),
        );
        let mut x_hi = _mm256_setr_epi64x(
            i64::from(xs[4]),
            i64::from(xs[5]),
            i64::from(xs[6]),
            i64::from(xs[7]),
        );
        let slot_mask = _mm256_set1_epi64x(i64::from(SCALE - 1));
        let low16 = _mm256_set1_epi64x(0xFFFF);
        let lower_bound = _mm256_set1_epi64x(i64::from(RANS_L));
        let two_byte_bound = _mm256_set1_epi64x(1 << 15);
        let sixteen = _mm256_set1_epi64x(16);
        // Per-half round step: gather, update, emit, vectorized renorm.
        // The renorm never leaves the vector domain: `vpcmpgtq` masks count
        // the 0/1/2 refill bytes per lane, `vpsllvq` re-widens the state,
        // and `vpsrlvq` drops in the big-endian byte pair speculatively
        // loaded from each lane cursor (the per-round budget in
        // [`decode8_payload_fast`] guarantees both bytes are in bounds, and
        // a right shift by 16 discards the pair entirely for lanes that
        // need no bytes). Only the pair loads and the mask-derived cursor
        // bumps are scalar, and both hang off the shallow cursor chain, not
        // the state chain — an earlier revision that spilled the states for
        // a scalar refill and reloaded them paid two store-forward stalls
        // per half per round on the state chain and ran ~15% slower.
        macro_rules! half {
            ($x:ident, $r:expr, $base:literal) => {{
                let slot = _mm256_and_si256($x, slot_mask);
                let e = _mm256_i64gather_epi64(eb as *const i64, slot, 8);
                let mut syms = [0u64; 4];
                _mm256_storeu_si256(syms.as_mut_ptr() as *mut __m256i, _mm256_srli_epi64(e, 32));
                ob.add($r * LANES + $base).write(T::of_sym(syms[0] as u32));
                ob.add($r * LANES + $base + 1).write(T::of_sym(syms[1] as u32));
                ob.add($r * LANES + $base + 2).write(T::of_sym(syms[2] as u32));
                ob.add($r * LANES + $base + 3).write(T::of_sym(syms[3] as u32));
                let freq = _mm256_and_si256(_mm256_srli_epi64(e, 16), low16);
                let cum = _mm256_and_si256(e, low16);
                let prod = _mm256_mul_epu32(freq, _mm256_srli_epi64($x, SCALE_BITS as i32));
                let nx = _mm256_sub_epi64(_mm256_add_epi64(prod, slot), cum);
                // Big-endian byte pairs at each lane cursor; `nx < 2^31` so
                // the signed 64-bit compares below are exact.
                let two = _mm256_setr_epi64x(
                    i64::from(u16::swap_bytes((pb.add(p[$base]) as *const u16).read_unaligned())),
                    i64::from(u16::swap_bytes(
                        (pb.add(p[$base + 1]) as *const u16).read_unaligned(),
                    )),
                    i64::from(u16::swap_bytes(
                        (pb.add(p[$base + 2]) as *const u16).read_unaligned(),
                    )),
                    i64::from(u16::swap_bytes(
                        (pb.add(p[$base + 3]) as *const u16).read_unaligned(),
                    )),
                );
                let need1 = _mm256_cmpgt_epi64(lower_bound, nx);
                let need2 = _mm256_cmpgt_epi64(two_byte_bound, nx);
                let nbytes =
                    _mm256_sub_epi64(_mm256_setzero_si256(), _mm256_add_epi64(need1, need2));
                let nbits = _mm256_slli_epi64(nbytes, 3);
                $x = _mm256_or_si256(
                    _mm256_sllv_epi64(nx, nbits),
                    _mm256_srlv_epi64(two, _mm256_sub_epi64(sixteen, nbits)),
                );
                let m1 = _mm256_movemask_pd(_mm256_castsi256_pd(need1)) as usize;
                let m2 = _mm256_movemask_pd(_mm256_castsi256_pd(need2)) as usize;
                p[$base] += (m1 & 1) + (m2 & 1);
                p[$base + 1] += ((m1 >> 1) & 1) + ((m2 >> 1) & 1);
                p[$base + 2] += ((m1 >> 2) & 1) + ((m2 >> 2) & 1);
                p[$base + 3] += ((m1 >> 3) & 1) + ((m2 >> 3) & 1);
            }};
        }
        for r in 0..rounds {
            half!(x_lo, r, 0);
            half!(x_hi, r, 4);
        }
        let mut lanes = [0u64; LANES];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, x_lo);
        _mm256_storeu_si256(lanes.as_mut_ptr().add(4) as *mut __m256i, x_hi);
        for k in 0..LANES {
            xs[k] = lanes[k] as u32;
        }
        out.set_len(out_len + rounds * LANES);
        *ptrs = p;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(symbols: &[u32]) -> Vec<u8> {
        let encoded = rans_encode(symbols);
        let (decoded, used) = rans_decode(&encoded).unwrap();
        assert_eq!(decoded, symbols);
        assert_eq!(used, encoded.len());
        // The scratch-reusing entry points agree byte for byte with the
        // wrappers, including when the same scratch served other inputs.
        let mut scratch = RansScratch::new();
        let mut warmup = Vec::new();
        rans_encode_with(&mut scratch, &[9, 9, 1, 2, 3, 9], &mut warmup);
        let mut with_out = Vec::new();
        rans_encode_with(&mut scratch, symbols, &mut with_out);
        assert_eq!(with_out, encoded);
        let mut decoded_with = Vec::new();
        let used_with = rans_decode_with(&mut scratch, &encoded, &mut decoded_with).unwrap();
        assert_eq!(decoded_with, symbols);
        assert_eq!(used_with, encoded.len());
        encoded
    }

    #[test]
    fn empty_input() {
        roundtrip(&[]);
    }

    #[test]
    fn single_symbol_costs_almost_nothing() {
        // freq == SCALE makes the encode step the identity: the payload is
        // just the two flushed states.
        let encoded = roundtrip(&[42; 100_000]);
        assert!(encoded.len() < 24, "single-symbol stream is {} bytes", encoded.len());
    }

    #[test]
    fn short_streams_roundtrip() {
        roundtrip(&[5]);
        roundtrip(&[5, 6]);
        roundtrip(&[5, 6, 5]);
        roundtrip(&[0, u32::MAX]);
    }

    #[test]
    fn skewed_distribution_compresses_below_huffman_floor() {
        // 99% zeros: Huffman pays ≥ 1 bit per symbol; rANS codes the hot
        // symbol at a fraction of a bit.
        let mut symbols = vec![0u32; 99_000];
        symbols.extend((0..1000).map(|i| (i % 17) as u32 + 1));
        let encoded = roundtrip(&symbols);
        let huff = crate::huffman_encode(&symbols);
        assert!(
            encoded.len() < huff.len() / 4,
            "rans {} vs huffman {} bytes",
            encoded.len(),
            huff.len()
        );
    }

    #[test]
    fn uniform_byte_alphabet_roundtrips() {
        let symbols: Vec<u32> = (0..40_960u32).map(|i| i % 256).collect();
        roundtrip(&symbols);
    }

    #[test]
    fn sparse_large_symbol_values_roundtrip() {
        // Span > DENSE_SPAN_MAX: exercises the symbol-map addressing.
        let symbols = vec![0u32, u32::MAX, 123_456_789, 42, u32::MAX, 42, 0, 0];
        roundtrip(&symbols);
    }

    #[test]
    fn wide_alphabet_falls_back_to_embedded_huffman() {
        // More than 4096 distinct symbols cannot fit a 12-bit table.
        let symbols: Vec<u32> = (0..6000u32).collect();
        let encoded = roundtrip(&symbols);
        assert_eq!(encoded[0], MODE_HUFF);
        // Under the limit the rANS path is used.
        let narrow: Vec<u32> = (0..4096u32).collect();
        assert_eq!(roundtrip(&narrow)[0], MODE_RANS);
    }

    #[test]
    fn byte_entry_points_match_widened_u32_streams() {
        let bytes: Vec<u8> = (0..20_000usize).map(|i| (i * i % 251) as u8).collect();
        let widened: Vec<u32> = bytes.iter().map(|&b| u32::from(b)).collect();
        let mut scratch = RansScratch::new();
        let mut from_bytes = Vec::new();
        rans_encode_bytes_with(&mut scratch, &bytes, &mut from_bytes);
        assert_eq!(from_bytes, rans_encode(&widened));
        let mut back = Vec::new();
        let used = rans_decode_bytes_with(&mut scratch, &from_bytes, &mut back).unwrap();
        assert_eq!(back, bytes);
        assert_eq!(used, from_bytes.len());
    }

    #[test]
    fn byte_decode_rejects_wide_symbols() {
        let encoded = rans_encode(&[300u32; 50]);
        let mut scratch = RansScratch::new();
        let mut out = Vec::new();
        assert!(matches!(
            rans_decode_bytes_with(&mut scratch, &encoded, &mut out),
            Err(CodecError::Corrupt(_))
        ));
    }

    #[test]
    fn pseudorandom_sequence_roundtrips() {
        let mut state = 0x12345678u64;
        let symbols: Vec<u32> = (0..50_000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) % 300) as u32
            })
            .collect();
        roundtrip(&symbols);
    }

    #[test]
    fn geometric_skew_roundtrips() {
        let mut state = 0x9E3779B97F4A7C15u64;
        let symbols: Vec<u32> = (0..30_000)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state.trailing_zeros() % 24
            })
            .collect();
        roundtrip(&symbols);
    }

    #[test]
    fn normalization_is_exact_for_adversarial_histograms() {
        // Many tiny counts next to one huge one force both the deficit and
        // the excess paths of the normalizer.
        let mut symbols = vec![7u32; 1_000_000];
        symbols.extend(0..4000u32);
        roundtrip(&symbols);
        // All counts equal at a size that does not divide SCALE.
        let symbols: Vec<u32> = (0..3000u32).flat_map(|s| [s, s, s]).collect();
        roundtrip(&symbols);
    }

    #[test]
    fn decode_reports_consumed_length_inside_container() {
        let encoded = rans_encode(&[9, 9, 8, 7]);
        let mut container = encoded.clone();
        container.extend_from_slice(&[0xAA, 0xBB, 0xCC]);
        let (decoded, used) = rans_decode(&container).unwrap();
        assert_eq!(decoded, vec![9, 9, 8, 7]);
        assert_eq!(used, encoded.len());
    }

    #[test]
    fn truncated_streams_are_errors() {
        let encoded = rans_encode(&[1, 2, 3, 1, 2, 3, 3, 3, 200, 1, 1]);
        for cut in 0..encoded.len() {
            assert!(rans_decode(&encoded[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn truncated_frequency_table_is_an_error_not_an_allocation() {
        // A header claiming 4096 alphabet entries with two bytes of table
        // must fail the entry parse, not reserve anything sized by the claim.
        let mut bad = vec![MODE_RANS];
        write_varint(&mut bad, 10); // n_symbols
        write_varint(&mut bad, 4096); // alphabet_size
        write_varint(&mut bad, 1); // one symbol…
        write_varint(&mut bad, 2); // …and its freq, then nothing
        assert_eq!(rans_decode(&bad), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn frequencies_must_sum_to_scale() {
        for freqs in [[2048u64, 2047].as_slice(), &[2048, 2049], &[4096, 1]] {
            let mut bad = vec![MODE_RANS];
            write_varint(&mut bad, 4); // n_symbols
            write_varint(&mut bad, freqs.len() as u64);
            for (sym, &f) in freqs.iter().enumerate() {
                write_varint(&mut bad, sym as u64);
                write_varint(&mut bad, f);
            }
            write_varint(&mut bad, 8);
            bad.extend_from_slice(&[0u8; 8]);
            assert!(
                matches!(rans_decode(&bad), Err(CodecError::Corrupt(_))),
                "freqs {freqs:?} must be rejected"
            );
        }
    }

    #[test]
    fn zero_frequency_and_oversized_alphabet_are_rejected() {
        let mut bad = vec![MODE_RANS];
        write_varint(&mut bad, 4);
        write_varint(&mut bad, 1);
        write_varint(&mut bad, 7);
        write_varint(&mut bad, 0); // freq 0
        assert!(matches!(rans_decode(&bad), Err(CodecError::Corrupt(_))));

        let mut bad = vec![MODE_RANS];
        write_varint(&mut bad, 4);
        write_varint(&mut bad, 4097); // alphabet too wide for 12-bit tables
        assert!(matches!(rans_decode(&bad), Err(CodecError::Corrupt(_))));
    }

    #[test]
    fn unknown_mode_byte_is_rejected() {
        let mut bad = rans_encode(&[1, 2, 3]);
        bad[0] = 7;
        assert!(matches!(rans_decode(&bad), Err(CodecError::Corrupt(_))));
        assert_eq!(rans_decode(&[]), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn implausible_symbol_count_is_rejected_without_allocation() {
        // A tiny single-symbol stream claiming 2^60 symbols must fail the
        // degenerate-run cap, not spin the decode loop.
        let mut bad = vec![MODE_RANS];
        write_varint(&mut bad, 1u64 << 60);
        write_varint(&mut bad, 1);
        write_varint(&mut bad, 7);
        write_varint(&mut bad, u64::from(SCALE));
        write_varint(&mut bad, 8);
        bad.extend_from_slice(&RANS_L.to_le_bytes());
        bad.extend_from_slice(&RANS_L.to_le_bytes());
        assert!(matches!(rans_decode(&bad), Err(CodecError::Corrupt(_))));
    }

    #[test]
    fn huge_single_symbol_runs_under_the_cap_roundtrip() {
        // Regression: the old per-stream-byte plausibility cap rejected the
        // encoder's own output for constant inputs past ~19M symbols. The
        // degenerate bulk-fill path must round-trip far beyond that.
        let symbols = vec![3u32; 30_000_000];
        let encoded = rans_encode(&symbols);
        assert!(encoded.len() < 24, "degenerate stream is {} bytes", encoded.len());
        let (decoded, used) = rans_decode(&encoded).unwrap();
        assert_eq!(decoded, symbols);
        assert_eq!(used, encoded.len());
    }

    #[test]
    fn forged_multi_symbol_count_is_bounded_by_the_payload_budget() {
        // A near-degenerate two-symbol table (freqs 4095/1) over a seed-only
        // payload cannot plausibly encode 10M symbols: the information
        // bound must reject the claim before the decode loop multiplies a
        // 20-byte stream into a 40MB allocation.
        let mut bad = vec![MODE_RANS];
        write_varint(&mut bad, 10_000_000);
        write_varint(&mut bad, 2);
        write_varint(&mut bad, 0);
        write_varint(&mut bad, 4095);
        write_varint(&mut bad, 1);
        write_varint(&mut bad, 1);
        write_varint(&mut bad, 8);
        bad.extend_from_slice(&RANS_L.to_le_bytes());
        bad.extend_from_slice(&RANS_L.to_le_bytes());
        match rans_decode(&bad) {
            Err(CodecError::Corrupt(msg)) => {
                assert!(msg.contains("implausible"), "unexpected message: {msg}")
            }
            other => panic!("expected the information-bound rejection, got {other:?}"),
        }
    }

    #[test]
    fn degenerate_stream_with_trailing_payload_is_rejected() {
        // The single-symbol fast path must not silently accept payload
        // bytes beyond the two seed states.
        let mut bad = vec![MODE_RANS];
        write_varint(&mut bad, 4);
        write_varint(&mut bad, 1);
        write_varint(&mut bad, 7);
        write_varint(&mut bad, u64::from(SCALE));
        write_varint(&mut bad, 9);
        bad.extend_from_slice(&RANS_L.to_le_bytes());
        bad.extend_from_slice(&RANS_L.to_le_bytes());
        bad.push(0xAB);
        assert!(matches!(rans_decode(&bad), Err(CodecError::Corrupt(_))));
    }

    #[test]
    fn corrupted_payload_fails_the_seed_check() {
        // Flip a payload byte: decode either errors mid-stream or fails the
        // final state/consumption checks — it must never "succeed" silently
        // with the wrong length. (Symbol-level corruption within a valid
        // state walk is undetectable by any entropy coder; the containers
        // above add their own counts/shape checks.)
        let symbols: Vec<u32> = (0..500u32).map(|i| i % 7).collect();
        let encoded = rans_encode(&symbols);
        let mut bad = encoded.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xFF;
        match rans_decode(&bad) {
            Err(_) => {}
            Ok((decoded, _)) => assert_eq!(decoded.len(), symbols.len()),
        }
    }

    #[test]
    fn every_supported_level_decodes_identically() {
        use crate::dispatch::supported_levels;
        // Shapes chosen to hit the fast path's regimes: skewed streams whose
        // payload is tiny relative to the symbol count (every chunk takes
        // the careful loop), dense high-entropy streams (unchecked chunks),
        // odd lengths (the tail symbol), and short streams.
        let mut state = 0xDEADBEEFu64;
        let mut rng = move |m: u32| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % u64::from(m)) as u32
        };
        let dense: Vec<u32> = (0..30_001).map(|_| rng(300)).collect();
        let mut skewed = vec![0u32; 60_000];
        for s in skewed.iter_mut().step_by(97) {
            *s = rng(17) + 1;
        }
        let cases: Vec<Vec<u32>> =
            vec![dense, skewed, vec![5], vec![5, 6, 5], (0..u32::from(u8::MAX) + 1).collect()];
        let mut scratch = RansScratch::new();
        for (case, symbols) in cases.iter().enumerate() {
            let encoded = rans_encode(symbols);
            let mut reference = Vec::new();
            let used_ref =
                rans_decode_with_at(&mut scratch, SimdLevel::Scalar, &encoded, &mut reference)
                    .unwrap();
            assert_eq!(&reference, symbols);
            for &level in supported_levels() {
                let mut out = Vec::new();
                let used = rans_decode_with_at(&mut scratch, level, &encoded, &mut out).unwrap();
                assert_eq!(out, reference, "case={case} level={level:?}");
                assert_eq!(used, used_ref, "case={case} level={level:?}");
            }
            // Truncations fail identically at every level.
            for cut in [encoded.len() / 3, encoded.len() - 1] {
                let reference_err = rans_decode_with_at(
                    &mut scratch,
                    SimdLevel::Scalar,
                    &encoded[..cut],
                    &mut Vec::new(),
                );
                for &level in supported_levels() {
                    let got =
                        rans_decode_with_at(&mut scratch, level, &encoded[..cut], &mut Vec::new());
                    assert_eq!(got, reference_err, "case={case} cut={cut} level={level:?}");
                }
            }
        }
    }

    #[test]
    fn byte_sink_levels_agree() {
        use crate::dispatch::supported_levels;
        let bytes: Vec<u8> = (0..40_000usize).map(|i| (i * 31 % 251) as u8).collect();
        let mut scratch = RansScratch::new();
        let mut encoded = Vec::new();
        rans_encode_bytes_with(&mut scratch, &bytes, &mut encoded);
        for &level in supported_levels() {
            let mut out = Vec::new();
            let used = rans_decode_bytes_with_at(&mut scratch, level, &encoded, &mut out).unwrap();
            assert_eq!(out, bytes, "level={level:?}");
            assert_eq!(used, encoded.len());
        }
    }

    #[test]
    fn states_seed_check_rejects_forged_states() {
        // A hand-built stream whose states do not decode back to the seed.
        let mut bad = vec![MODE_RANS];
        write_varint(&mut bad, 2); // n_symbols
        write_varint(&mut bad, 1); // single symbol
        write_varint(&mut bad, 3);
        write_varint(&mut bad, u64::from(SCALE));
        write_varint(&mut bad, 8);
        bad.extend_from_slice(&(RANS_L + 5).to_le_bytes()); // wrong seed
        bad.extend_from_slice(&RANS_L.to_le_bytes());
        assert!(matches!(rans_decode(&bad), Err(CodecError::Corrupt(_))));
    }

    // ------------------------------------------------------------------
    // 8-way format
    // ------------------------------------------------------------------

    fn roundtrip8(symbols: &[u32]) -> Vec<u8> {
        let encoded = rans8_encode(symbols);
        let (decoded, used) = rans8_decode(&encoded).unwrap();
        assert_eq!(decoded, symbols);
        assert_eq!(used, encoded.len());
        // The scratch-reusing entry points agree byte for byte with the
        // wrappers, including when the same scratch served other inputs.
        let mut scratch = RansScratch::new();
        let mut warmup = Vec::new();
        rans8_encode_with(&mut scratch, &[9, 9, 1, 2, 3, 9], &mut warmup);
        let mut with_out = Vec::new();
        rans8_encode_with(&mut scratch, symbols, &mut with_out);
        assert_eq!(with_out, encoded);
        let mut decoded_with = Vec::new();
        let used_with = rans8_decode_with(&mut scratch, &encoded, &mut decoded_with).unwrap();
        assert_eq!(decoded_with, symbols);
        assert_eq!(used_with, encoded.len());
        encoded
    }

    /// Split an 8-way stream into `(prefix through the freq table,
    /// payload_len, lane lengths, payload)` so tests can forge individual
    /// header fields and restitch with [`join8`].
    fn split8(encoded: &[u8]) -> (Vec<u8>, u64, Vec<u64>, Vec<u8>) {
        assert_eq!(encoded[0], MODE_RANS8);
        let mut off = 1usize;
        let (_n, u) = read_varint(&encoded[off..]).unwrap();
        off += u;
        let (alphabet, u) = read_varint(&encoded[off..]).unwrap();
        off += u;
        for _ in 0..alphabet * 2 {
            let (_, u) = read_varint(&encoded[off..]).unwrap();
            off += u;
        }
        let prefix = encoded[..off].to_vec();
        let (payload_len, u) = read_varint(&encoded[off..]).unwrap();
        off += u;
        let mut lanes = Vec::new();
        for _ in 0..LANES {
            let (l, u) = read_varint(&encoded[off..]).unwrap();
            off += u;
            lanes.push(l);
        }
        (prefix, payload_len, lanes, encoded[off..].to_vec())
    }

    fn join8(prefix: &[u8], payload_len: u64, lanes: &[u64], payload: &[u8]) -> Vec<u8> {
        let mut out = prefix.to_vec();
        write_varint(&mut out, payload_len);
        for &l in lanes {
            write_varint(&mut out, l);
        }
        out.extend_from_slice(payload);
        out
    }

    #[test]
    fn rans8_roundtrips_every_short_length() {
        // 0..=33 covers every lane-count residue twice plus the empty
        // stream: lanes that never see a symbol still carry seed states.
        let mut state = 0xC0FFEEu64;
        for n in 0..=33usize {
            let symbols: Vec<u32> = (0..n)
                .map(|_| {
                    state =
                        state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    ((state >> 33) % 11) as u32
                })
                .collect();
            roundtrip8(&symbols);
        }
    }

    #[test]
    fn rans8_mode_byte_is_self_describing() {
        assert_eq!(roundtrip8(&[1, 2, 3, 1, 2, 3, 3, 3])[0], MODE_RANS8);
        assert_eq!(roundtrip8(&[])[0], MODE_RANS8);
    }

    #[test]
    fn rans8_single_symbol_payload_is_exactly_the_seeds() {
        // freq == SCALE makes every coding step the identity; the payload
        // is the eight flushed seed states and nothing else.
        let encoded = roundtrip8(&[42; 100_000]);
        let (_, payload_len, lanes, payload) = split8(&encoded);
        assert_eq!(payload_len, 4 * LANES as u64);
        assert_eq!(lanes, vec![4u64; LANES]);
        assert_eq!(payload.len(), 4 * LANES);
    }

    #[test]
    fn rans8_huge_single_symbol_runs_under_the_cap_roundtrip() {
        let symbols = vec![3u32; 30_000_000];
        let encoded = rans8_encode(&symbols);
        let (decoded, used) = rans8_decode(&encoded).unwrap();
        assert_eq!(decoded, symbols);
        assert_eq!(used, encoded.len());
    }

    #[test]
    fn rans8_dense_and_skewed_streams_roundtrip() {
        let mut state = 0x8BADF00Du64;
        let mut rng = move |m: u32| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % u64::from(m)) as u32
        };
        let dense: Vec<u32> = (0..50_000).map(|_| rng(300)).collect();
        roundtrip8(&dense);
        let mut skewed = vec![0u32; 80_000];
        for s in skewed.iter_mut().step_by(89) {
            *s = rng(17) + 1;
        }
        roundtrip8(&skewed);
        let sparse = vec![0u32, u32::MAX, 123_456_789, 42, u32::MAX, 42, 0, 0, 7];
        roundtrip8(&sparse);
    }

    #[test]
    fn rans8_wide_alphabet_falls_back_to_shared_huffman() {
        // > 4096 distinct symbols: both encoders emit the same mode-1
        // Huffman stream, and both decoders accept it — the fallback is the
        // only cross-decodable mode.
        let symbols: Vec<u32> = (0..6000u32).collect();
        let from8 = rans8_encode(&symbols);
        assert_eq!(from8[0], MODE_HUFF);
        assert_eq!(from8, rans_encode(&symbols));
        let (via2, _) = rans_decode(&from8).unwrap();
        let (via8, _) = rans8_decode(&from8).unwrap();
        assert_eq!(via2, symbols);
        assert_eq!(via8, symbols);
    }

    #[test]
    fn the_two_formats_reject_each_other_cleanly() {
        let symbols: Vec<u32> = (0..200u32).map(|i| i % 9).collect();
        let two_way = rans_encode(&symbols);
        let eight_way = rans8_encode(&symbols);
        match rans_decode(&eight_way) {
            Err(CodecError::Corrupt(msg)) => {
                assert!(msg.contains("unknown rans mode 2"), "got: {msg}")
            }
            other => panic!("2-way decoder accepted an 8-way stream: {other:?}"),
        }
        match rans8_decode(&two_way) {
            Err(CodecError::Corrupt(msg)) => {
                assert!(msg.contains("unknown rans8 mode 0"), "got: {msg}")
            }
            other => panic!("8-way decoder accepted a 2-way stream: {other:?}"),
        }
    }

    #[test]
    fn rans8_forged_mode_byte_is_rejected() {
        let mut bad = rans8_encode(&[1, 2, 3]);
        bad[0] = 7;
        match rans8_decode(&bad) {
            Err(CodecError::Corrupt(msg)) => {
                assert!(msg.contains("unknown rans8 mode 7"), "got: {msg}")
            }
            other => panic!("forged mode accepted: {other:?}"),
        }
        assert_eq!(rans8_decode(&[]), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn rans8_truncated_lane_length_header_is_eof() {
        // A stream that ends after three of the eight lane-length varints.
        let mut bad = vec![MODE_RANS8];
        write_varint(&mut bad, 4); // n_symbols
        write_varint(&mut bad, 2); // alphabet {0, 1}, 2048 each
        write_varint(&mut bad, 0);
        write_varint(&mut bad, 2048);
        write_varint(&mut bad, 1);
        write_varint(&mut bad, 2048);
        write_varint(&mut bad, 32); // payload_len
        for _ in 0..3 {
            write_varint(&mut bad, 4);
        }
        assert_eq!(rans8_decode(&bad), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn rans8_lane_length_sum_mismatch_is_rejected() {
        let symbols: Vec<u32> = (0..64u32).map(|i| i % 5).collect();
        let (prefix, payload_len, mut lanes, payload) = split8(&rans8_encode(&symbols));
        lanes[0] += 1; // sum no longer matches the payload length
        let bad = join8(&prefix, payload_len, &lanes, &payload);
        match rans8_decode(&bad) {
            Err(CodecError::Corrupt(msg)) => {
                assert!(msg.contains("lane lengths sum"), "got: {msg}")
            }
            other => panic!("sum mismatch accepted: {other:?}"),
        }
    }

    #[test]
    fn rans8_lane_shorter_than_its_seed_is_rejected() {
        // Lane lengths that sum correctly but starve lane 0 of its seed.
        let mut bad = vec![MODE_RANS8];
        write_varint(&mut bad, 4);
        write_varint(&mut bad, 2);
        write_varint(&mut bad, 0);
        write_varint(&mut bad, 2048);
        write_varint(&mut bad, 1);
        write_varint(&mut bad, 2048);
        write_varint(&mut bad, 32);
        for len in [3u64, 5, 4, 4, 4, 4, 4, 4] {
            write_varint(&mut bad, len);
        }
        bad.extend_from_slice(&[0u8; 32]);
        match rans8_decode(&bad) {
            Err(CodecError::Corrupt(msg)) => {
                assert!(msg.contains("too short for its seed state"), "got: {msg}")
            }
            other => panic!("short lane accepted: {other:?}"),
        }
    }

    #[test]
    fn rans8_undrained_lane_bytes_are_rejected() {
        // Append a byte to lane 7's region (header kept consistent): the
        // state walk never consumes it, so the drain check must fire.
        let symbols: Vec<u32> = (0..64u32).map(|i| i % 5).collect();
        let (prefix, payload_len, mut lanes, mut payload) = split8(&rans8_encode(&symbols));
        lanes[LANES - 1] += 1;
        payload.push(0x00);
        let bad = join8(&prefix, payload_len + 1, &lanes, &payload);
        match rans8_decode(&bad) {
            Err(CodecError::Corrupt(msg)) => {
                assert!(msg.contains("undecoded trailing bytes"), "got: {msg}")
            }
            other => panic!("undrained lane accepted: {other:?}"),
        }
    }

    #[test]
    fn rans8_forged_seed_state_is_rejected() {
        // Flip the low byte of lane 0's seed in a multi-symbol stream: the
        // walk diverges, so decode must error (seed check or mid-stream).
        let symbols: Vec<u32> = (0..64u32).map(|i| i % 5).collect();
        let (prefix, payload_len, lanes, mut payload) = split8(&rans8_encode(&symbols));
        payload[0] ^= 0xFF;
        let bad = join8(&prefix, payload_len, &lanes, &payload);
        match rans8_decode(&bad) {
            Err(_) => {}
            Ok((decoded, _)) => assert_eq!(decoded.len(), symbols.len()),
        }
    }

    #[test]
    fn rans8_degenerate_forgeries_are_rejected() {
        // 2^60 claimed symbols over a single-symbol table: the run cap.
        let mut bad = vec![MODE_RANS8];
        write_varint(&mut bad, 1u64 << 60);
        write_varint(&mut bad, 1);
        write_varint(&mut bad, 7);
        write_varint(&mut bad, u64::from(SCALE));
        write_varint(&mut bad, 4 * LANES as u64);
        for _ in 0..LANES {
            write_varint(&mut bad, 4);
        }
        for _ in 0..LANES {
            bad.extend_from_slice(&RANS_L.to_le_bytes());
        }
        assert!(matches!(rans8_decode(&bad), Err(CodecError::Corrupt(_))));

        // A single-symbol stream with payload beyond the eight seeds.
        let mut bad = vec![MODE_RANS8];
        write_varint(&mut bad, 4);
        write_varint(&mut bad, 1);
        write_varint(&mut bad, 7);
        write_varint(&mut bad, u64::from(SCALE));
        write_varint(&mut bad, 4 * LANES as u64 + 1);
        write_varint(&mut bad, 5);
        for _ in 1..LANES {
            write_varint(&mut bad, 4);
        }
        for _ in 0..LANES {
            bad.extend_from_slice(&RANS_L.to_le_bytes());
        }
        bad.push(0xAB);
        assert!(matches!(rans8_decode(&bad), Err(CodecError::Corrupt(_))));

        // A multi-symbol table over a seeds-only payload claiming 10M
        // symbols: the information bound.
        let mut bad = vec![MODE_RANS8];
        write_varint(&mut bad, 10_000_000);
        write_varint(&mut bad, 2);
        write_varint(&mut bad, 0);
        write_varint(&mut bad, 4095);
        write_varint(&mut bad, 1);
        write_varint(&mut bad, 1);
        write_varint(&mut bad, 4 * LANES as u64);
        for _ in 0..LANES {
            write_varint(&mut bad, 4);
        }
        for _ in 0..LANES {
            bad.extend_from_slice(&RANS_L.to_le_bytes());
        }
        match rans8_decode(&bad) {
            Err(CodecError::Corrupt(msg)) => {
                assert!(msg.contains("implausible"), "got: {msg}")
            }
            other => panic!("expected the information-bound rejection, got {other:?}"),
        }
    }

    #[test]
    fn rans8_byte_entry_points_match_widened_u32_streams() {
        let bytes: Vec<u8> = (0..20_000usize).map(|i| (i * i % 251) as u8).collect();
        let widened: Vec<u32> = bytes.iter().map(|&b| u32::from(b)).collect();
        let mut scratch = RansScratch::new();
        let mut from_bytes = Vec::new();
        rans8_encode_bytes_with(&mut scratch, &bytes, &mut from_bytes);
        assert_eq!(from_bytes, rans8_encode(&widened));
        let mut back = Vec::new();
        let used = rans8_decode_bytes_with(&mut scratch, &from_bytes, &mut back).unwrap();
        assert_eq!(back, bytes);
        assert_eq!(used, from_bytes.len());

        let wide = rans8_encode(&[300u32; 50]);
        let mut out = Vec::new();
        assert!(matches!(
            rans8_decode_bytes_with(&mut scratch, &wide, &mut out),
            Err(CodecError::Corrupt(_))
        ));
    }

    #[test]
    fn rans8_decode_reports_consumed_length_inside_container() {
        let encoded = rans8_encode(&[9, 9, 8, 7, 9, 8, 7, 6, 5, 9]);
        let mut container = encoded.clone();
        container.extend_from_slice(&[0xAA, 0xBB, 0xCC]);
        let (decoded, used) = rans8_decode(&container).unwrap();
        assert_eq!(decoded, vec![9, 9, 8, 7, 9, 8, 7, 6, 5, 9]);
        assert_eq!(used, encoded.len());
    }

    #[test]
    fn rans8_truncated_streams_are_errors() {
        let encoded = rans8_encode(&[1, 2, 3, 1, 2, 3, 3, 3, 200, 1, 1, 5, 4, 3, 2, 1, 1]);
        for cut in 0..encoded.len() {
            assert!(rans8_decode(&encoded[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn rans8_every_supported_level_decodes_identically() {
        use crate::dispatch::supported_levels;
        // Same regimes as the 2-way tier test: dense high-entropy streams
        // (unchecked chunks, heavy renormalization — the AVX2 mask path),
        // skewed streams with tiny payloads (careful chunks), every short
        // length residue, and the full byte alphabet.
        let mut state = 0xDEAD8EEFu64;
        let mut rng = move |m: u32| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % u64::from(m)) as u32
        };
        let dense: Vec<u32> = (0..30_007).map(|_| rng(300)).collect();
        let mut skewed = vec![0u32; 60_000];
        for s in skewed.iter_mut().step_by(97) {
            *s = rng(17) + 1;
        }
        let cases: Vec<Vec<u32>> = vec![
            dense,
            skewed,
            vec![5],
            vec![5, 6, 5],
            (0..u32::from(u8::MAX) + 1).collect(),
            (0..13).map(|_| rng(7)).collect(),
        ];
        let mut scratch = RansScratch::new();
        for (case, symbols) in cases.iter().enumerate() {
            let encoded = rans8_encode(symbols);
            let mut reference = Vec::new();
            let used_ref =
                rans8_decode_with_at(&mut scratch, SimdLevel::Scalar, &encoded, &mut reference)
                    .unwrap();
            assert_eq!(&reference, symbols);
            for &level in supported_levels() {
                let mut out = Vec::new();
                let used = rans8_decode_with_at(&mut scratch, level, &encoded, &mut out).unwrap();
                assert_eq!(out, reference, "case={case} level={level:?}");
                assert_eq!(used, used_ref, "case={case} level={level:?}");
            }
            // Truncations fail identically at every level.
            for cut in [encoded.len() / 3, encoded.len() - 1] {
                let reference_err = rans8_decode_with_at(
                    &mut scratch,
                    SimdLevel::Scalar,
                    &encoded[..cut],
                    &mut Vec::new(),
                );
                for &level in supported_levels() {
                    let got =
                        rans8_decode_with_at(&mut scratch, level, &encoded[..cut], &mut Vec::new());
                    assert_eq!(got, reference_err, "case={case} cut={cut} level={level:?}");
                }
            }
        }
    }

    #[test]
    fn rans8_byte_sink_levels_agree() {
        use crate::dispatch::supported_levels;
        let bytes: Vec<u8> = (0..40_000usize).map(|i| (i * 31 % 251) as u8).collect();
        let mut scratch = RansScratch::new();
        let mut encoded = Vec::new();
        rans8_encode_bytes_with(&mut scratch, &bytes, &mut encoded);
        for &level in supported_levels() {
            let mut out = Vec::new();
            let used = rans8_decode_bytes_with_at(&mut scratch, level, &encoded, &mut out).unwrap();
            assert_eq!(out, bytes, "level={level:?}");
            assert_eq!(used, encoded.len());
        }
    }

    #[test]
    fn rans8_compresses_like_the_2_way_format() {
        // Eight states cost 24 more flush bytes plus the lane-length header;
        // on real streams the ratio difference must stay marginal.
        let mut state = 0x777u64;
        let symbols: Vec<u32> = (0..100_000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 33).trailing_zeros() % 24
            })
            .collect();
        let two = rans_encode(&symbols).len();
        let eight = rans8_encode(&symbols).len();
        assert!(
            eight as f64 <= two as f64 * 1.01 + 64.0,
            "8-way stream {eight} bytes vs 2-way {two}"
        );
    }
}
