//! Two-way interleaved byte-oriented rANS coding over `u32` symbols.
//!
//! The fast-path entropy backend of the codec ablation: where the Huffman
//! coder spends whole bits per symbol and needs a code tree, rANS codes at
//! fractional-bit granularity from a flat frequency table and renormalizes
//! byte-at-a-time, so encode and decode are short branch-light integer
//! pipelines. The layout follows the well-known public-domain byte-wise
//! rANS construction:
//!
//! * **32-bit states** kept in the renormalization interval
//!   `[2^23, 2^31)`, emitting/consuming one byte at a time,
//! * **12-bit normalized frequency tables** (`SCALE = 4096`): per-symbol
//!   frequencies are scaled to sum exactly to `SCALE`, so the decoder's
//!   cumulative-table lookup is a single 4096-entry LUT load,
//! * **2-way interleaving**: symbols at even indices thread one state,
//!   odd indices the other, giving the CPU two independent dependency
//!   chains to overlap (the encoder walks the input in reverse — rANS is
//!   LIFO — and both states flush into one shared reversed-emit buffer),
//! * **division-free encoding** via precomputed reciprocals
//!   (`q = (x·rcp) >> shift` replaces `x / freq` in the hot loop).
//!
//! Alphabets with more than `SCALE` distinct symbols cannot be normalized
//! into a 12-bit table; those streams fall back to an embedded canonical
//! Huffman section behind a mode byte (the analogue of FSE's raw/RLE escape
//! modes). Quantization-code streams sit far below the limit in practice.
//!
//! All working memory lives in a caller-owned [`RansScratch`] — the
//! frequency/cumulative tables, the normalization workspace, and the
//! reversed-emit buffer are cleared, never shrunk, between calls, so the
//! `*_with` entry points are allocation-free in steady state exactly like
//! their Huffman counterparts.
//!
//! ## Stream layout
//!
//! ```text
//! u8 mode                     0 = rANS, 1 = embedded Huffman fallback
//! mode 0:
//!   varint n_symbols
//!   varint alphabet_size      1..=4096 (absent when n_symbols == 0)
//!   (varint symbol, varint freq)*   ascending symbols; freqs sum to 4096
//!   varint payload_len
//!   payload                   u32-LE state0, u32-LE state1, renorm bytes
//! mode 1:
//!   a self-describing `huffman_encode` stream
//! ```

use crate::dispatch::{simd_level, SimdLevel};
use crate::scratch::{build_alphabet_into, CodecScratch, SymbolLike, SymbolMap, TableMode};
use crate::{huffman_decode_with, huffman_encode_with, read_varint, write_varint, CodecError};

/// Log2 of the normalized frequency scale (12-bit tables).
pub const SCALE_BITS: u32 = 12;
/// Normalized frequencies sum to this value.
const SCALE: u32 = 1 << SCALE_BITS;
/// Lower bound of the state renormalization interval `[L, L·256)`.
const RANS_L: u32 = 1 << 23;
/// Mode byte: interleaved rANS payload.
const MODE_RANS: u8 = 0;
/// Mode byte: embedded Huffman stream (alphabet wider than the 12-bit table).
const MODE_HUFF: u8 = 1;
/// Decode-side cap on a single-symbol (zero-cost) stream's run length.
/// A one-entry alphabet codes for free, so the count is the only bound on
/// the output — 2^28 symbols (a 16384×16384 constant field) is far beyond
/// any workload here while keeping a forged tiny stream from claiming an
/// effectively unbounded allocation. Multi-symbol streams are instead
/// bounded by what their payload could possibly encode (see `decode_impl`).
const MAX_DEGENERATE_RUN: u64 = 1 << 28;

/// Precomputed per-symbol encoder metadata: renormalization threshold plus
/// the reciprocal that turns the `x / freq` of the state update into a
/// multiply-shift (the standard public-domain trick).
#[derive(Debug, Clone, Copy, Default)]
struct EncSym {
    /// Renormalize (emit a byte) while the state is at or above this.
    x_max: u32,
    /// Fixed-point reciprocal of the frequency.
    rcp_freq: u32,
    /// Additive bias folding the cumulative offset (and the `freq == 1`
    /// correction) into one term.
    bias: u32,
    /// `SCALE - freq`, the multiplier of the reciprocal quotient.
    cmpl_freq: u32,
    /// Right shift applied after the reciprocal multiply.
    rcp_shift: u32,
}

impl EncSym {
    /// Build the encoder entry for a symbol with cumulative start `start`
    /// and normalized frequency `freq` (`1..=SCALE`).
    fn new(start: u32, freq: u32) -> EncSym {
        debug_assert!((1..=SCALE).contains(&freq));
        let x_max = ((RANS_L >> SCALE_BITS) << 8) * freq;
        if freq < 2 {
            // freq == 1: q must equal x exactly. rcp = 2^32 − 1 gives
            // q = x − 1 (for x ≥ 1), compensated by folding SCALE − 1 into
            // the bias: x + start + SCALE − 1 + (x−1)(SCALE−1) = x·SCALE + start.
            EncSym {
                x_max,
                rcp_freq: u32::MAX,
                rcp_shift: 0,
                bias: start + SCALE - 1,
                cmpl_freq: SCALE - 1,
            }
        } else {
            // shift = ceil(log2(freq)); the rounded-up reciprocal makes
            // q = floor(x / freq) exact for all x < 2^31.
            let mut shift = 0u32;
            while (1u64 << shift) < u64::from(freq) {
                shift += 1;
            }
            let rcp_freq = (1u64 << (shift + 31)).div_ceil(u64::from(freq)) as u32;
            EncSym { x_max, rcp_freq, rcp_shift: shift - 1, bias: start, cmpl_freq: SCALE - freq }
        }
    }
}

/// One encoder step: renormalize `x` into range for `sym`, then push the
/// symbol. Emitted bytes go onto the reversed-emit stack.
#[inline(always)]
fn enc_put(mut x: u32, rev: &mut Vec<u8>, sym: &EncSym) -> u32 {
    while x >= sym.x_max {
        rev.push(x as u8);
        x >>= 8;
    }
    let q = ((u64::from(x) * u64::from(sym.rcp_freq)) >> 32 >> sym.rcp_shift) as u32;
    x + sym.bias + q * sym.cmpl_freq
}

/// Reusable working memory of the rANS coder: one instance per worker (held
/// inside the compressor scratches in a
/// [`ScratchArena`](https://docs.rs/lcc_pressio)-style bag) turns every
/// per-call table build and emit buffer into a cleared-not-freed reuse.
#[derive(Debug, Default)]
pub struct RansScratch {
    // ---- alphabet discovery (shared machinery with the Huffman coder) ----
    /// Dense counts indexed by `symbol − min_symbol`.
    /// Invariant: all-zero between calls.
    hist: Vec<u64>,
    /// Sparse-path counts indexed by symbol-map slot.
    slot_counts: Vec<u64>,
    /// Sparse-path symbol → slot map.
    sym_map: SymbolMap,
    /// `(symbol, count)` pairs sorted by symbol.
    alphabet: Vec<(u32, u64)>,

    // ---- normalization workspace ----
    /// Normalized frequency per alphabet index (sums to `SCALE`).
    freqs: Vec<u32>,
    /// Index permutation used to shave normalization excess deterministically.
    norm_order: Vec<u32>,

    // ---- encode tables ----
    /// Reciprocal metadata per alphabet index.
    enc_syms: Vec<EncSym>,
    /// Dense `symbol − min_symbol` → alphabet index. Entries are only
    /// meaningful for symbols of the current alphabet (which covers every
    /// input symbol); the used entries are re-zeroed after each encode.
    dense_idx: Vec<u32>,
    /// Sparse symbol-map slot → alphabet index.
    slot_idx: Vec<u32>,
    /// Reversed-emit buffer: bytes are pushed while encoding in reverse,
    /// then the buffer is reversed once into the output stream.
    rev: Vec<u8>,

    // ---- decode tables ----
    /// Symbol per alphabet index.
    dec_syms: Vec<u32>,
    /// Normalized frequency per alphabet index.
    dec_freq: Vec<u16>,
    /// Cumulative start per alphabet index.
    dec_cum: Vec<u16>,
    /// 4096-entry slot → alphabet index LUT.
    slot_lut: Vec<u16>,
    /// Fused slot → `symbol << 32 | freq << 16 | cum` entries for the SIMD
    /// decode path: one 64-bit load replaces the index → symbol/freq/cum
    /// chain of dependent lookups (gather-free, per the dispatch design).
    #[cfg(target_arch = "x86_64")]
    slot_entry: Vec<u64>,

    // ---- Huffman fallback (alphabets wider than the 12-bit table) ----
    /// Working memory of the embedded Huffman section.
    huff: CodecScratch,
    /// Widened copy of the input for the fallback encoder, and the decode
    /// target of fallback byte streams.
    syms_u32: Vec<u32>,
}

impl RansScratch {
    /// Create an empty scratch; buffers grow on first use and are then
    /// recycled across calls.
    pub fn new() -> Self {
        RansScratch::default()
    }
}

/// Encode `symbols` into a self-describing rANS stream (fresh scratch).
pub fn rans_encode(symbols: &[u32]) -> Vec<u8> {
    let mut out = Vec::new();
    rans_encode_with(&mut RansScratch::new(), symbols, &mut out);
    out
}

/// [`rans_encode`] into a caller-owned output buffer, reusing `scratch` for
/// every table and the emit buffer. Appends to `out` (callers embed rANS
/// sections inside larger containers).
pub fn rans_encode_with(scratch: &mut RansScratch, symbols: &[u32], out: &mut Vec<u8>) {
    encode_impl(scratch, symbols, out);
}

/// Byte-stream variant of [`rans_encode_with`]: codes the bytes as symbols
/// without widening the input to `u32` first (the ZFP container and the
/// byte-codec pipeline feed multi-megabyte bit streams through here).
pub fn rans_encode_bytes_with(scratch: &mut RansScratch, bytes: &[u8], out: &mut Vec<u8>) {
    encode_impl(scratch, bytes, out);
}

/// Decode a stream produced by [`rans_encode`] (fresh scratch). Returns the
/// symbols and the number of bytes consumed.
pub fn rans_decode(bytes: &[u8]) -> Result<(Vec<u32>, usize), CodecError> {
    let mut out = Vec::new();
    let used = rans_decode_with(&mut RansScratch::new(), bytes, &mut out)?;
    Ok((out, used))
}

/// [`rans_decode`] into a caller-owned symbol buffer (cleared first),
/// reusing `scratch` for the frequency tables and the slot LUT. Returns the
/// number of bytes consumed, so callers can embed the stream in a container.
pub fn rans_decode_with(
    scratch: &mut RansScratch,
    bytes: &[u8],
    out: &mut Vec<u32>,
) -> Result<usize, CodecError> {
    decode_impl(scratch, bytes, u32::MAX, simd_level(), out)
}

/// [`rans_decode_with`] at an explicit SIMD tier (tests and benchmarks —
/// every tier decodes the same bytes to the same symbols and errors).
pub fn rans_decode_with_at(
    scratch: &mut RansScratch,
    level: SimdLevel,
    bytes: &[u8],
    out: &mut Vec<u32>,
) -> Result<usize, CodecError> {
    decode_impl(scratch, bytes, u32::MAX, level, out)
}

/// Byte-stream variant of [`rans_decode_with`]: symbols above 255 in the
/// frequency table (or the fallback section) are rejected as corruption, so
/// the decode loop narrows to `u8` without per-symbol checks.
pub fn rans_decode_bytes_with(
    scratch: &mut RansScratch,
    bytes: &[u8],
    out: &mut Vec<u8>,
) -> Result<usize, CodecError> {
    decode_impl(scratch, bytes, u8::MAX.into(), simd_level(), out)
}

/// [`rans_decode_bytes_with`] at an explicit SIMD tier.
pub fn rans_decode_bytes_with_at(
    scratch: &mut RansScratch,
    level: SimdLevel,
    bytes: &[u8],
    out: &mut Vec<u8>,
) -> Result<usize, CodecError> {
    decode_impl(scratch, bytes, u8::MAX.into(), level, out)
}

/// Output element of the generic decode loop; conversion is infallible
/// because the frequency table was validated against the sink's `max_sym`.
trait SinkSym: Copy {
    fn of_sym(sym: u32) -> Self;
}

impl SinkSym for u32 {
    #[inline(always)]
    fn of_sym(sym: u32) -> u32 {
        sym
    }
}

impl SinkSym for u8 {
    #[inline(always)]
    fn of_sym(sym: u32) -> u8 {
        debug_assert!(sym <= 255);
        sym as u8
    }
}

/// Normalize the histogram in `alphabet` to frequencies summing exactly to
/// `SCALE`, every entry at least 1. Deterministic: floor-scaled counts, the
/// deficit granted to the most frequent symbol, any excess shaved from the
/// largest normalized frequencies first (stable on ties).
fn normalize_freqs(alphabet: &[(u32, u64)], freqs: &mut Vec<u32>, order: &mut Vec<u32>) {
    debug_assert!(!alphabet.is_empty() && alphabet.len() <= SCALE as usize);
    let total: u64 = alphabet.iter().map(|&(_, c)| c).sum();
    freqs.clear();
    let mut sum = 0u32;
    for &(_, count) in alphabet {
        let f = ((u128::from(count) << SCALE_BITS) / u128::from(total)) as u32;
        let f = f.max(1);
        freqs.push(f);
        sum += f;
    }
    if sum < SCALE {
        let k = alphabet
            .iter()
            .enumerate()
            .max_by_key(|&(k, &(_, count))| (count, std::cmp::Reverse(k)))
            .map(|(k, _)| k)
            .expect("alphabet is non-empty");
        freqs[k] += SCALE - sum;
    } else if sum > SCALE {
        // Shave from the largest frequencies first; total reducible mass is
        // sum − len ≥ sum − SCALE, so one pass always suffices.
        let mut excess = sum - SCALE;
        order.clear();
        order.extend(0..freqs.len() as u32);
        order.sort_by_key(|&k| std::cmp::Reverse(freqs[k as usize]));
        for &k in order.iter() {
            if excess == 0 {
                break;
            }
            let take = excess.min(freqs[k as usize] - 1);
            freqs[k as usize] -= take;
            excess -= take;
        }
        debug_assert_eq!(excess, 0);
    }
}

fn encode_impl<S: SymbolLike>(scratch: &mut RansScratch, symbols: &[S], out: &mut Vec<u8>) {
    if symbols.is_empty() {
        out.push(MODE_RANS);
        write_varint(out, 0);
        return;
    }

    let mode = build_alphabet_into(
        &mut scratch.hist,
        &mut scratch.sym_map,
        &mut scratch.slot_counts,
        &mut scratch.alphabet,
        symbols,
    );

    if scratch.alphabet.len() > SCALE as usize {
        // Too many distinct symbols for a 12-bit table: embed a canonical
        // Huffman stream instead (never reachable from the byte-oriented
        // entry points — 256 ≤ SCALE).
        out.push(MODE_HUFF);
        scratch.syms_u32.clear();
        scratch.syms_u32.extend(symbols.iter().map(|s| s.sym()));
        huffman_encode_with(&mut scratch.huff, &scratch.syms_u32, out);
        return;
    }

    out.push(MODE_RANS);
    write_varint(out, symbols.len() as u64);

    normalize_freqs(&scratch.alphabet, &mut scratch.freqs, &mut scratch.norm_order);

    // Header: (symbol, normalized frequency) pairs in ascending symbol order.
    write_varint(out, scratch.alphabet.len() as u64);
    for (k, &(sym, _)) in scratch.alphabet.iter().enumerate() {
        write_varint(out, u64::from(sym));
        write_varint(out, u64::from(scratch.freqs[k]));
    }

    // Encoder tables: cumulative starts + reciprocals per alphabet index,
    // and the symbol → index addressing for the chosen table mode.
    scratch.enc_syms.clear();
    let mut cum = 0u32;
    for &f in &scratch.freqs {
        scratch.enc_syms.push(EncSym::new(cum, f));
        cum += f;
    }
    debug_assert_eq!(cum, SCALE);
    match mode {
        TableMode::Dense { min } => {
            let span = (scratch.alphabet.last().expect("non-empty").0 - min) as usize + 1;
            if scratch.dense_idx.len() < span {
                scratch.dense_idx.resize(span, 0);
            }
            for (k, &(sym, _)) in scratch.alphabet.iter().enumerate() {
                scratch.dense_idx[(sym - min) as usize] = k as u32;
            }
        }
        TableMode::Sparse => {
            scratch.slot_idx.clear();
            scratch.slot_idx.resize(scratch.alphabet.len(), 0);
            for (k, &(sym, _)) in scratch.alphabet.iter().enumerate() {
                let slot = scratch.sym_map.get(sym).expect("alphabet symbol") as usize;
                scratch.slot_idx[slot] = k as u32;
            }
        }
    }

    // Encode in reverse (rANS is LIFO) with two interleaved states: the
    // symbol's index parity selects its state, so the decoder can alternate
    // states while walking forward. Both states share one emit stack.
    let rev = &mut scratch.rev;
    rev.clear();
    let mut x0 = RANS_L;
    let mut x1 = RANS_L;
    let enc_syms = &scratch.enc_syms;
    let mut i = symbols.len();
    macro_rules! sym_of {
        ($s:expr) => {{
            let k = match mode {
                TableMode::Dense { min } => scratch.dense_idx[($s.sym() - min) as usize],
                TableMode::Sparse => {
                    let slot = scratch.sym_map.get($s.sym()).expect("alphabet covers input");
                    scratch.slot_idx[slot as usize]
                }
            };
            &enc_syms[k as usize]
        }};
    }
    if i & 1 == 1 {
        // Odd length: the highest index is even and threads state 0.
        i -= 1;
        x0 = enc_put(x0, rev, sym_of!(symbols[i]));
    }
    while i >= 2 {
        // Two independent dependency chains per iteration: index i−1 is
        // odd (state 1), index i−2 even (state 0).
        i -= 1;
        x1 = enc_put(x1, rev, sym_of!(symbols[i]));
        i -= 1;
        x0 = enc_put(x0, rev, sym_of!(symbols[i]));
    }
    // Flush so the reversed stream opens with state0 then state1, LE each.
    rev.extend_from_slice(&x1.to_be_bytes());
    rev.extend_from_slice(&x0.to_be_bytes());
    rev.reverse();
    write_varint(out, rev.len() as u64);
    out.extend_from_slice(rev);

    // Restore the all-zero invariant of the dense index table
    // (O(distinct), not O(span)).
    if let TableMode::Dense { min } = mode {
        for &(sym, _) in &scratch.alphabet {
            scratch.dense_idx[(sym - min) as usize] = 0;
        }
    }
}

fn decode_impl<T: SinkSym>(
    scratch: &mut RansScratch,
    bytes: &[u8],
    max_sym: u32,
    level: SimdLevel,
    out: &mut Vec<T>,
) -> Result<usize, CodecError> {
    out.clear();
    if bytes.is_empty() {
        return Err(CodecError::UnexpectedEof);
    }
    let mode = bytes[0];
    let mut offset = 1usize;
    if mode == MODE_HUFF {
        // Embedded Huffman fallback: decode into the widened scratch buffer,
        // then narrow (checked against the sink's symbol ceiling).
        let used = huffman_decode_with(&mut scratch.huff, &bytes[offset..], &mut scratch.syms_u32)?;
        offset += used;
        out.reserve(scratch.syms_u32.len());
        for &s in &scratch.syms_u32 {
            if s > max_sym {
                return Err(CodecError::Corrupt(format!("symbol {s} exceeds the sink range")));
            }
            out.push(T::of_sym(s));
        }
        return Ok(offset);
    }
    if mode != MODE_RANS {
        return Err(CodecError::Corrupt(format!("unknown rans mode {mode}")));
    }

    let (n_symbols, used) = read_varint(&bytes[offset..])?;
    offset += used;
    if n_symbols == 0 {
        return Ok(offset);
    }

    let (alphabet_size, used) = read_varint(&bytes[offset..])?;
    offset += used;
    if alphabet_size == 0 || alphabet_size > u64::from(SCALE) {
        return Err(CodecError::Corrupt(format!(
            "rans alphabet size {alphabet_size} outside 1..={SCALE}"
        )));
    }
    let alphabet_size = alphabet_size as usize;

    // Frequency table: bounded parse (each entry costs at least two stream
    // bytes, and the size itself was just capped at 4096), validating the
    // sink ceiling and the exact 12-bit sum before any LUT fill.
    scratch.dec_syms.clear();
    scratch.dec_freq.clear();
    scratch.dec_cum.clear();
    let mut cum = 0u32;
    for _ in 0..alphabet_size {
        let (sym, used) = read_varint(&bytes[offset..])?;
        offset += used;
        let (freq, used) = read_varint(&bytes[offset..])?;
        offset += used;
        if sym > u64::from(max_sym) {
            return Err(CodecError::Corrupt(format!("symbol {sym} exceeds the sink range")));
        }
        if freq == 0 || freq > u64::from(SCALE) {
            return Err(CodecError::Corrupt(format!("invalid rans frequency {freq}")));
        }
        scratch.dec_syms.push(sym as u32);
        scratch.dec_freq.push(freq as u16);
        scratch.dec_cum.push(cum as u16);
        cum += freq as u32;
        if cum > SCALE {
            return Err(CodecError::Corrupt(format!(
                "rans frequencies sum past {SCALE} at symbol {sym}"
            )));
        }
    }
    if cum != SCALE {
        return Err(CodecError::Corrupt(format!(
            "rans frequencies sum to {cum}, expected {SCALE}"
        )));
    }

    let (payload_len, used) = read_varint(&bytes[offset..])?;
    offset += used;
    let payload_len = payload_len as usize;
    if bytes.len() < offset || bytes.len() - offset < payload_len {
        return Err(CodecError::UnexpectedEof);
    }
    let payload = &bytes[offset..offset + payload_len];
    let consumed = offset + payload_len;
    if payload.len() < 8 {
        return Err(CodecError::Corrupt("rans payload too short for two states".into()));
    }
    let mut x0 = u32::from_le_bytes(payload[0..4].try_into().expect("4 bytes"));
    let mut x1 = u32::from_le_bytes(payload[4..8].try_into().expect("4 bytes"));
    if x0 < RANS_L || x1 < RANS_L {
        return Err(CodecError::Corrupt("rans state below the renormalization interval".into()));
    }
    let mut ptr = 8usize;

    // A single-symbol alphabet is the one genuinely zero-cost stream shape
    // (freq == SCALE makes every coding step the identity): the payload is
    // exactly the two seed states and the count alone sets the output size.
    // Handle it as a bulk fill behind an absolute run cap — without the
    // per-byte coupling a forged count would otherwise exploit, and without
    // false-rejecting huge constant inputs the encoder legitimately emits.
    if alphabet_size == 1 {
        if n_symbols > MAX_DEGENERATE_RUN {
            return Err(CodecError::Corrupt(format!(
                "single-symbol run of {n_symbols} exceeds the {MAX_DEGENERATE_RUN} cap"
            )));
        }
        if payload.len() != 8 || x0 != RANS_L || x1 != RANS_L {
            return Err(CodecError::Corrupt(
                "single-symbol payload must be exactly the two seed states".into(),
            ));
        }
        out.resize(n_symbols as usize, T::of_sym(scratch.dec_syms[0]));
        return Ok(consumed);
    }

    // Every other alphabet has max_freq ≤ SCALE − 1, so each symbol costs
    // real information: at least ~log2(SCALE / max_freq) bits must come out
    // of the payload (state flush included). Cap the claimed count at a
    // generous multiple of that bound — honest streams sit well inside it
    // (coding overhead only makes them larger), while a forged header can
    // no longer turn a few bytes into an absurd allocation or decode loop.
    let max_freq = scratch.dec_freq.iter().map(|&f| u64::from(f)).max().expect("non-empty table");
    let budget_bits = payload.len() as u64 * 8 + 64;
    let max_symbols =
        budget_bits.saturating_mul(3 * u64::from(SCALE) / (u64::from(SCALE) - max_freq));
    if n_symbols > max_symbols {
        return Err(CodecError::Corrupt(format!(
            "implausible symbol count {n_symbols} for a {}-byte payload",
            payload.len()
        )));
    }
    let n_symbols = n_symbols as usize;

    // The reserve is a hint bounded by the input; near-zero-entropy streams
    // may decode more (amortized push growth covers the rest).
    out.reserve(n_symbols.min(payload.len().saturating_mul(8) + 64));

    #[cfg(target_arch = "x86_64")]
    if level >= SimdLevel::Sse4 {
        return decode_payload_fast(scratch, payload, n_symbols, x0, x1, out).map(|()| consumed);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = level;

    // Slot LUT: every 12-bit slot maps to exactly one alphabet index (the
    // exact-sum check above guarantees full coverage).
    scratch.slot_lut.clear();
    scratch.slot_lut.resize(SCALE as usize, 0);
    for k in 0..alphabet_size {
        let lo = u32::from(scratch.dec_cum[k]) as usize;
        let hi = lo + u32::from(scratch.dec_freq[k]) as usize;
        for entry in &mut scratch.slot_lut[lo..hi] {
            *entry = k as u16;
        }
    }

    let lut = &scratch.slot_lut;
    let dec_syms = &scratch.dec_syms;
    let dec_freq = &scratch.dec_freq;
    let dec_cum = &scratch.dec_cum;
    macro_rules! step {
        ($x:ident) => {{
            let slot = $x & (SCALE - 1);
            let k = lut[slot as usize] as usize;
            out.push(T::of_sym(dec_syms[k]));
            $x = u32::from(dec_freq[k]) * ($x >> SCALE_BITS) + slot - u32::from(dec_cum[k]);
            while $x < RANS_L {
                if ptr >= payload.len() {
                    return Err(CodecError::UnexpectedEof);
                }
                $x = ($x << 8) | u32::from(payload[ptr]);
                ptr += 1;
            }
        }};
    }
    let pairs = n_symbols / 2;
    for _ in 0..pairs {
        step!(x0);
        step!(x1);
    }
    if n_symbols & 1 == 1 {
        step!(x0);
    }

    // A well-formed stream ends with both states back at their seed and the
    // payload fully drained; anything else is corruption.
    if x0 != RANS_L || x1 != RANS_L {
        return Err(CodecError::Corrupt("rans states did not return to the seed".into()));
    }
    if ptr != payload.len() {
        return Err(CodecError::Corrupt(format!(
            "rans payload has {} undecoded trailing bytes",
            payload.len() - ptr
        )));
    }
    Ok(consumed)
}

/// The SSE4.1 decode loop for multi-symbol streams. Identical observable
/// behaviour to the scalar loop — same symbols, same consumed bytes, same
/// errors — structured for throughput:
///
/// * **fused slot entries** (`symbol << 32 | freq << 16 | cum` per 12-bit
///   slot) make each symbol one 64-bit table load instead of four dependent
///   ones,
/// * the two interleaved states update **in one 128-bit register**
///   (`pmulld`/`psubd`/`paddd` across both lanes),
/// * the loop runs in chunks with a byte-budget check up front: a decoded
///   symbol renormalizes by at most two payload bytes (the post-step state
///   is ≥ 2^11; two byte injections reach 2^23), so a chunk holding
///   `4 × pairs` spare payload bytes needs no per-byte bounds checks at
///   all. Chunks near the payload's end — including every stream truncated
///   mid-decode — take the checked careful loop instead, which reports
///   `UnexpectedEof` exactly where the scalar loop would.
// Sanctioned `unsafe_code` waiver (see `crate::dispatch`): this driver owns
// the byte-budget and capacity checks the unchecked inner loop relies on.
#[allow(unsafe_code)]
#[cfg(target_arch = "x86_64")]
fn decode_payload_fast<T: SinkSym>(
    scratch: &mut RansScratch,
    payload: &[u8],
    n_symbols: usize,
    mut x0: u32,
    mut x1: u32,
    out: &mut Vec<T>,
) -> Result<(), CodecError> {
    scratch.slot_entry.clear();
    scratch.slot_entry.resize(SCALE as usize, 0);
    for k in 0..scratch.dec_syms.len() {
        let freq = u32::from(scratch.dec_freq[k]);
        let cum = u32::from(scratch.dec_cum[k]);
        let fused =
            (u64::from(scratch.dec_syms[k]) << 32) | (u64::from(freq) << 16) | u64::from(cum);
        for entry in &mut scratch.slot_entry[cum as usize..(cum + freq) as usize] {
            *entry = fused;
        }
    }
    let entries = &scratch.slot_entry;

    let mut ptr = 8usize;
    let mut pairs = n_symbols / 2;
    const CHUNK_PAIRS: usize = 512;
    while pairs > 0 {
        let take = pairs.min(CHUNK_PAIRS);
        out.reserve(take * 2);
        if payload.len() - ptr >= take * 4 {
            // SAFETY: `level >= Sse4` is only reachable on hosts whose
            // detection confirmed SSE4.1; the byte budget just checked keeps
            // every unchecked payload read in bounds (≤ 4 bytes per pair),
            // and the reserve covers the raw output writes.
            unsafe {
                let (nx0, nx1, nptr) =
                    simd::decode_pairs_unchecked(entries, payload, ptr, x0, x1, take, out);
                x0 = nx0;
                x1 = nx1;
                ptr = nptr;
            }
        } else {
            decode_pairs_careful(entries, payload, &mut ptr, &mut x0, &mut x1, take, out)?;
        }
        pairs -= take;
    }
    if n_symbols & 1 == 1 {
        // Odd tail: one more symbol on state 0 (checked reads).
        let slot = x0 & (SCALE - 1);
        let e = entries[slot as usize];
        out.push(T::of_sym((e >> 32) as u32));
        x0 = ((e >> 16) & 0xFFFF) as u32 * (x0 >> SCALE_BITS) + slot - (e & 0xFFFF) as u32;
        while x0 < RANS_L {
            if ptr >= payload.len() {
                return Err(CodecError::UnexpectedEof);
            }
            x0 = (x0 << 8) | u32::from(payload[ptr]);
            ptr += 1;
        }
    }

    if x0 != RANS_L || x1 != RANS_L {
        return Err(CodecError::Corrupt("rans states did not return to the seed".into()));
    }
    if ptr != payload.len() {
        return Err(CodecError::Corrupt(format!(
            "rans payload has {} undecoded trailing bytes",
            payload.len() - ptr
        )));
    }
    Ok(())
}

/// Checked-read pair loop over the fused entries — the payload-tail (and
/// truncated-stream) companion of [`simd::decode_pairs_unchecked`].
#[cfg(target_arch = "x86_64")]
fn decode_pairs_careful<T: SinkSym>(
    entries: &[u64],
    payload: &[u8],
    ptr: &mut usize,
    x0: &mut u32,
    x1: &mut u32,
    pairs: usize,
    out: &mut Vec<T>,
) -> Result<(), CodecError> {
    macro_rules! step {
        ($x:expr) => {{
            let slot = $x & (SCALE - 1);
            let e = entries[slot as usize];
            out.push(T::of_sym((e >> 32) as u32));
            $x = ((e >> 16) & 0xFFFF) as u32 * ($x >> SCALE_BITS) + slot - (e & 0xFFFF) as u32;
            while $x < RANS_L {
                if *ptr >= payload.len() {
                    return Err(CodecError::UnexpectedEof);
                }
                $x = ($x << 8) | u32::from(payload[*ptr]);
                *ptr += 1;
            }
        }};
    }
    for _ in 0..pairs {
        step!(*x0);
        step!(*x1);
    }
    Ok(())
}

#[cfg(target_arch = "x86_64")]
mod simd {
    // Sanctioned `unsafe_code` waiver (see `crate::dispatch`): `core::arch`
    // intrinsics are unsafe by definition, the callers establish the byte
    // budget and capacity the unchecked accesses rely on, and the
    // bit-identity suite pins scalar equivalence.
    #![allow(unsafe_code)]

    use super::{SinkSym, RANS_L, SCALE, SCALE_BITS};

    /// Decode `pairs` interleaved symbol pairs with no bounds checks: each
    /// state takes the fused-entry `freq·(x >> 12) + slot − cum` update in
    /// scalar registers (the two chains are independent, so they retire in
    /// parallel on any superscalar core), renormalization reads payload
    /// bytes unchecked, and symbols are written straight into `out`'s spare
    /// capacity. Returns the updated `(x0, x1, ptr)`.
    ///
    /// An earlier revision carried both states through one 128-bit register
    /// (`pmulld`/`psubd`/`paddd` across two lanes); profiling showed the
    /// per-pair GPR↔XMM transfers (`_mm_set_epi32` in, `_mm_extract_epi32`
    /// out for the data-dependent renormalization) cost more than the
    /// two-lane arithmetic saved, so the dispatched tier's win over the
    /// portable loop comes from the fused single-load LUT and the
    /// bounds-check-free inner loop, compiled with SSE4.1 codegen enabled.
    ///
    /// # Safety
    /// Requires SSE4.1, `payload.len() - ptr ≥ 4 · pairs`, spare capacity of
    /// at least `2 · pairs` in `out`, every `entries` slot filled for a
    /// 12-bit slot index, and `x0, x1 ≥ RANS_L` (the caller-validated state
    /// invariant that bounds renormalization at two bytes per symbol).
    #[target_feature(enable = "sse4.1")]
    pub(super) unsafe fn decode_pairs_unchecked<T: SinkSym>(
        entries: &[u64],
        payload: &[u8],
        mut ptr: usize,
        mut x0: u32,
        mut x1: u32,
        pairs: usize,
        out: &mut Vec<T>,
    ) -> (u32, u32, usize) {
        debug_assert!(payload.len() - ptr >= pairs * 4);
        debug_assert!(out.capacity() - out.len() >= pairs * 2);
        debug_assert_eq!(entries.len(), SCALE as usize);
        let payload_base = payload.as_ptr();
        let entries_base = entries.as_ptr();
        let out_len = out.len();
        let out_base = out.as_mut_ptr().add(out_len);
        for j in 0..pairs {
            let slot0 = x0 & (SCALE - 1);
            let slot1 = x1 & (SCALE - 1);
            let e0 = *entries_base.add(slot0 as usize);
            let e1 = *entries_base.add(slot1 as usize);
            out_base.add(2 * j).write(T::of_sym((e0 >> 32) as u32));
            out_base.add(2 * j + 1).write(T::of_sym((e1 >> 32) as u32));
            // Low halves of the fused entries: freq << 16 | cum, per state.
            x0 = ((e0 >> 16) & 0xFFFF) as u32 * (x0 >> SCALE_BITS) + slot0 - (e0 & 0xFFFF) as u32;
            x1 = ((e1 >> 16) & 0xFFFF) as u32 * (x1 >> SCALE_BITS) + slot1 - (e1 & 0xFFFF) as u32;
            // Renormalize: at most two byte injections per state (post-step
            // states are ≥ 2^11), fully unrolled, reads covered by the
            // caller's byte budget.
            if x0 < RANS_L {
                x0 = (x0 << 8) | u32::from(*payload_base.add(ptr));
                ptr += 1;
                if x0 < RANS_L {
                    x0 = (x0 << 8) | u32::from(*payload_base.add(ptr));
                    ptr += 1;
                }
            }
            if x1 < RANS_L {
                x1 = (x1 << 8) | u32::from(*payload_base.add(ptr));
                ptr += 1;
                if x1 < RANS_L {
                    x1 = (x1 << 8) | u32::from(*payload_base.add(ptr));
                    ptr += 1;
                }
            }
        }
        out.set_len(out_len + pairs * 2);
        (x0, x1, ptr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(symbols: &[u32]) -> Vec<u8> {
        let encoded = rans_encode(symbols);
        let (decoded, used) = rans_decode(&encoded).unwrap();
        assert_eq!(decoded, symbols);
        assert_eq!(used, encoded.len());
        // The scratch-reusing entry points agree byte for byte with the
        // wrappers, including when the same scratch served other inputs.
        let mut scratch = RansScratch::new();
        let mut warmup = Vec::new();
        rans_encode_with(&mut scratch, &[9, 9, 1, 2, 3, 9], &mut warmup);
        let mut with_out = Vec::new();
        rans_encode_with(&mut scratch, symbols, &mut with_out);
        assert_eq!(with_out, encoded);
        let mut decoded_with = Vec::new();
        let used_with = rans_decode_with(&mut scratch, &encoded, &mut decoded_with).unwrap();
        assert_eq!(decoded_with, symbols);
        assert_eq!(used_with, encoded.len());
        encoded
    }

    #[test]
    fn empty_input() {
        roundtrip(&[]);
    }

    #[test]
    fn single_symbol_costs_almost_nothing() {
        // freq == SCALE makes the encode step the identity: the payload is
        // just the two flushed states.
        let encoded = roundtrip(&[42; 100_000]);
        assert!(encoded.len() < 24, "single-symbol stream is {} bytes", encoded.len());
    }

    #[test]
    fn short_streams_roundtrip() {
        roundtrip(&[5]);
        roundtrip(&[5, 6]);
        roundtrip(&[5, 6, 5]);
        roundtrip(&[0, u32::MAX]);
    }

    #[test]
    fn skewed_distribution_compresses_below_huffman_floor() {
        // 99% zeros: Huffman pays ≥ 1 bit per symbol; rANS codes the hot
        // symbol at a fraction of a bit.
        let mut symbols = vec![0u32; 99_000];
        symbols.extend((0..1000).map(|i| (i % 17) as u32 + 1));
        let encoded = roundtrip(&symbols);
        let huff = crate::huffman_encode(&symbols);
        assert!(
            encoded.len() < huff.len() / 4,
            "rans {} vs huffman {} bytes",
            encoded.len(),
            huff.len()
        );
    }

    #[test]
    fn uniform_byte_alphabet_roundtrips() {
        let symbols: Vec<u32> = (0..40_960u32).map(|i| i % 256).collect();
        roundtrip(&symbols);
    }

    #[test]
    fn sparse_large_symbol_values_roundtrip() {
        // Span > DENSE_SPAN_MAX: exercises the symbol-map addressing.
        let symbols = vec![0u32, u32::MAX, 123_456_789, 42, u32::MAX, 42, 0, 0];
        roundtrip(&symbols);
    }

    #[test]
    fn wide_alphabet_falls_back_to_embedded_huffman() {
        // More than 4096 distinct symbols cannot fit a 12-bit table.
        let symbols: Vec<u32> = (0..6000u32).collect();
        let encoded = roundtrip(&symbols);
        assert_eq!(encoded[0], MODE_HUFF);
        // Under the limit the rANS path is used.
        let narrow: Vec<u32> = (0..4096u32).collect();
        assert_eq!(roundtrip(&narrow)[0], MODE_RANS);
    }

    #[test]
    fn byte_entry_points_match_widened_u32_streams() {
        let bytes: Vec<u8> = (0..20_000usize).map(|i| (i * i % 251) as u8).collect();
        let widened: Vec<u32> = bytes.iter().map(|&b| u32::from(b)).collect();
        let mut scratch = RansScratch::new();
        let mut from_bytes = Vec::new();
        rans_encode_bytes_with(&mut scratch, &bytes, &mut from_bytes);
        assert_eq!(from_bytes, rans_encode(&widened));
        let mut back = Vec::new();
        let used = rans_decode_bytes_with(&mut scratch, &from_bytes, &mut back).unwrap();
        assert_eq!(back, bytes);
        assert_eq!(used, from_bytes.len());
    }

    #[test]
    fn byte_decode_rejects_wide_symbols() {
        let encoded = rans_encode(&[300u32; 50]);
        let mut scratch = RansScratch::new();
        let mut out = Vec::new();
        assert!(matches!(
            rans_decode_bytes_with(&mut scratch, &encoded, &mut out),
            Err(CodecError::Corrupt(_))
        ));
    }

    #[test]
    fn pseudorandom_sequence_roundtrips() {
        let mut state = 0x12345678u64;
        let symbols: Vec<u32> = (0..50_000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) % 300) as u32
            })
            .collect();
        roundtrip(&symbols);
    }

    #[test]
    fn geometric_skew_roundtrips() {
        let mut state = 0x9E3779B97F4A7C15u64;
        let symbols: Vec<u32> = (0..30_000)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state.trailing_zeros() % 24
            })
            .collect();
        roundtrip(&symbols);
    }

    #[test]
    fn normalization_is_exact_for_adversarial_histograms() {
        // Many tiny counts next to one huge one force both the deficit and
        // the excess paths of the normalizer.
        let mut symbols = vec![7u32; 1_000_000];
        symbols.extend(0..4000u32);
        roundtrip(&symbols);
        // All counts equal at a size that does not divide SCALE.
        let symbols: Vec<u32> = (0..3000u32).flat_map(|s| [s, s, s]).collect();
        roundtrip(&symbols);
    }

    #[test]
    fn decode_reports_consumed_length_inside_container() {
        let encoded = rans_encode(&[9, 9, 8, 7]);
        let mut container = encoded.clone();
        container.extend_from_slice(&[0xAA, 0xBB, 0xCC]);
        let (decoded, used) = rans_decode(&container).unwrap();
        assert_eq!(decoded, vec![9, 9, 8, 7]);
        assert_eq!(used, encoded.len());
    }

    #[test]
    fn truncated_streams_are_errors() {
        let encoded = rans_encode(&[1, 2, 3, 1, 2, 3, 3, 3, 200, 1, 1]);
        for cut in 0..encoded.len() {
            assert!(rans_decode(&encoded[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn truncated_frequency_table_is_an_error_not_an_allocation() {
        // A header claiming 4096 alphabet entries with two bytes of table
        // must fail the entry parse, not reserve anything sized by the claim.
        let mut bad = vec![MODE_RANS];
        write_varint(&mut bad, 10); // n_symbols
        write_varint(&mut bad, 4096); // alphabet_size
        write_varint(&mut bad, 1); // one symbol…
        write_varint(&mut bad, 2); // …and its freq, then nothing
        assert_eq!(rans_decode(&bad), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn frequencies_must_sum_to_scale() {
        for freqs in [[2048u64, 2047].as_slice(), &[2048, 2049], &[4096, 1]] {
            let mut bad = vec![MODE_RANS];
            write_varint(&mut bad, 4); // n_symbols
            write_varint(&mut bad, freqs.len() as u64);
            for (sym, &f) in freqs.iter().enumerate() {
                write_varint(&mut bad, sym as u64);
                write_varint(&mut bad, f);
            }
            write_varint(&mut bad, 8);
            bad.extend_from_slice(&[0u8; 8]);
            assert!(
                matches!(rans_decode(&bad), Err(CodecError::Corrupt(_))),
                "freqs {freqs:?} must be rejected"
            );
        }
    }

    #[test]
    fn zero_frequency_and_oversized_alphabet_are_rejected() {
        let mut bad = vec![MODE_RANS];
        write_varint(&mut bad, 4);
        write_varint(&mut bad, 1);
        write_varint(&mut bad, 7);
        write_varint(&mut bad, 0); // freq 0
        assert!(matches!(rans_decode(&bad), Err(CodecError::Corrupt(_))));

        let mut bad = vec![MODE_RANS];
        write_varint(&mut bad, 4);
        write_varint(&mut bad, 4097); // alphabet too wide for 12-bit tables
        assert!(matches!(rans_decode(&bad), Err(CodecError::Corrupt(_))));
    }

    #[test]
    fn unknown_mode_byte_is_rejected() {
        let mut bad = rans_encode(&[1, 2, 3]);
        bad[0] = 7;
        assert!(matches!(rans_decode(&bad), Err(CodecError::Corrupt(_))));
        assert_eq!(rans_decode(&[]), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn implausible_symbol_count_is_rejected_without_allocation() {
        // A tiny single-symbol stream claiming 2^60 symbols must fail the
        // degenerate-run cap, not spin the decode loop.
        let mut bad = vec![MODE_RANS];
        write_varint(&mut bad, 1u64 << 60);
        write_varint(&mut bad, 1);
        write_varint(&mut bad, 7);
        write_varint(&mut bad, u64::from(SCALE));
        write_varint(&mut bad, 8);
        bad.extend_from_slice(&RANS_L.to_le_bytes());
        bad.extend_from_slice(&RANS_L.to_le_bytes());
        assert!(matches!(rans_decode(&bad), Err(CodecError::Corrupt(_))));
    }

    #[test]
    fn huge_single_symbol_runs_under_the_cap_roundtrip() {
        // Regression: the old per-stream-byte plausibility cap rejected the
        // encoder's own output for constant inputs past ~19M symbols. The
        // degenerate bulk-fill path must round-trip far beyond that.
        let symbols = vec![3u32; 30_000_000];
        let encoded = rans_encode(&symbols);
        assert!(encoded.len() < 24, "degenerate stream is {} bytes", encoded.len());
        let (decoded, used) = rans_decode(&encoded).unwrap();
        assert_eq!(decoded, symbols);
        assert_eq!(used, encoded.len());
    }

    #[test]
    fn forged_multi_symbol_count_is_bounded_by_the_payload_budget() {
        // A near-degenerate two-symbol table (freqs 4095/1) over a seed-only
        // payload cannot plausibly encode 10M symbols: the information
        // bound must reject the claim before the decode loop multiplies a
        // 20-byte stream into a 40MB allocation.
        let mut bad = vec![MODE_RANS];
        write_varint(&mut bad, 10_000_000);
        write_varint(&mut bad, 2);
        write_varint(&mut bad, 0);
        write_varint(&mut bad, 4095);
        write_varint(&mut bad, 1);
        write_varint(&mut bad, 1);
        write_varint(&mut bad, 8);
        bad.extend_from_slice(&RANS_L.to_le_bytes());
        bad.extend_from_slice(&RANS_L.to_le_bytes());
        match rans_decode(&bad) {
            Err(CodecError::Corrupt(msg)) => {
                assert!(msg.contains("implausible"), "unexpected message: {msg}")
            }
            other => panic!("expected the information-bound rejection, got {other:?}"),
        }
    }

    #[test]
    fn degenerate_stream_with_trailing_payload_is_rejected() {
        // The single-symbol fast path must not silently accept payload
        // bytes beyond the two seed states.
        let mut bad = vec![MODE_RANS];
        write_varint(&mut bad, 4);
        write_varint(&mut bad, 1);
        write_varint(&mut bad, 7);
        write_varint(&mut bad, u64::from(SCALE));
        write_varint(&mut bad, 9);
        bad.extend_from_slice(&RANS_L.to_le_bytes());
        bad.extend_from_slice(&RANS_L.to_le_bytes());
        bad.push(0xAB);
        assert!(matches!(rans_decode(&bad), Err(CodecError::Corrupt(_))));
    }

    #[test]
    fn corrupted_payload_fails_the_seed_check() {
        // Flip a payload byte: decode either errors mid-stream or fails the
        // final state/consumption checks — it must never "succeed" silently
        // with the wrong length. (Symbol-level corruption within a valid
        // state walk is undetectable by any entropy coder; the containers
        // above add their own counts/shape checks.)
        let symbols: Vec<u32> = (0..500u32).map(|i| i % 7).collect();
        let encoded = rans_encode(&symbols);
        let mut bad = encoded.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xFF;
        match rans_decode(&bad) {
            Err(_) => {}
            Ok((decoded, _)) => assert_eq!(decoded.len(), symbols.len()),
        }
    }

    #[test]
    fn every_supported_level_decodes_identically() {
        use crate::dispatch::supported_levels;
        // Shapes chosen to hit the fast path's regimes: skewed streams whose
        // payload is tiny relative to the symbol count (every chunk takes
        // the careful loop), dense high-entropy streams (unchecked chunks),
        // odd lengths (the tail symbol), and short streams.
        let mut state = 0xDEADBEEFu64;
        let mut rng = move |m: u32| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % u64::from(m)) as u32
        };
        let dense: Vec<u32> = (0..30_001).map(|_| rng(300)).collect();
        let mut skewed = vec![0u32; 60_000];
        for s in skewed.iter_mut().step_by(97) {
            *s = rng(17) + 1;
        }
        let cases: Vec<Vec<u32>> =
            vec![dense, skewed, vec![5], vec![5, 6, 5], (0..u32::from(u8::MAX) + 1).collect()];
        let mut scratch = RansScratch::new();
        for (case, symbols) in cases.iter().enumerate() {
            let encoded = rans_encode(symbols);
            let mut reference = Vec::new();
            let used_ref =
                rans_decode_with_at(&mut scratch, SimdLevel::Scalar, &encoded, &mut reference)
                    .unwrap();
            assert_eq!(&reference, symbols);
            for &level in supported_levels() {
                let mut out = Vec::new();
                let used = rans_decode_with_at(&mut scratch, level, &encoded, &mut out).unwrap();
                assert_eq!(out, reference, "case={case} level={level:?}");
                assert_eq!(used, used_ref, "case={case} level={level:?}");
            }
            // Truncations fail identically at every level.
            for cut in [encoded.len() / 3, encoded.len() - 1] {
                let reference_err = rans_decode_with_at(
                    &mut scratch,
                    SimdLevel::Scalar,
                    &encoded[..cut],
                    &mut Vec::new(),
                );
                for &level in supported_levels() {
                    let got =
                        rans_decode_with_at(&mut scratch, level, &encoded[..cut], &mut Vec::new());
                    assert_eq!(got, reference_err, "case={case} cut={cut} level={level:?}");
                }
            }
        }
    }

    #[test]
    fn byte_sink_levels_agree() {
        use crate::dispatch::supported_levels;
        let bytes: Vec<u8> = (0..40_000usize).map(|i| (i * 31 % 251) as u8).collect();
        let mut scratch = RansScratch::new();
        let mut encoded = Vec::new();
        rans_encode_bytes_with(&mut scratch, &bytes, &mut encoded);
        for &level in supported_levels() {
            let mut out = Vec::new();
            let used = rans_decode_bytes_with_at(&mut scratch, level, &encoded, &mut out).unwrap();
            assert_eq!(out, bytes, "level={level:?}");
            assert_eq!(used, encoded.len());
        }
    }

    #[test]
    fn states_seed_check_rejects_forged_states() {
        // A hand-built stream whose states do not decode back to the seed.
        let mut bad = vec![MODE_RANS];
        write_varint(&mut bad, 2); // n_symbols
        write_varint(&mut bad, 1); // single symbol
        write_varint(&mut bad, 3);
        write_varint(&mut bad, u64::from(SCALE));
        write_varint(&mut bad, 8);
        bad.extend_from_slice(&(RANS_L + 5).to_le_bytes()); // wrong seed
        bad.extend_from_slice(&RANS_L.to_le_bytes());
        assert!(matches!(rans_decode(&bad), Err(CodecError::Corrupt(_))));
    }
}
