//! MSB-first bit-level writer and reader.

use crate::CodecError;

/// Accumulates bits most-significant-bit first into a byte vector.
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Number of bits already used in the trailing partial byte (0..=7).
    bit_pos: u8,
}

impl BitWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Forget everything written so far but keep the byte buffer's
    /// allocation — the reuse entry point for scratch-held writers.
    pub fn clear(&mut self) {
        self.bytes.clear();
        self.bit_pos = 0;
    }

    /// Number of whole bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.bit_pos == 0 {
            self.bytes.len() * 8
        } else {
            (self.bytes.len() - 1) * 8 + self.bit_pos as usize
        }
    }

    /// Append a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        if self.bit_pos == 0 {
            self.bytes.push(0);
        }
        if bit {
            let last = self.bytes.len() - 1;
            self.bytes[last] |= 1 << (7 - self.bit_pos);
        }
        self.bit_pos = (self.bit_pos + 1) % 8;
    }

    /// Append the lowest `count` bits of `value`, most significant first.
    ///
    /// Bits land in the same MSB-first layout as repeated [`write_bit`]
    /// calls, but are moved in three chunked steps — top up the trailing
    /// partial byte, push whole bytes, open a new partial byte — with no
    /// per-bit work. The Huffman payload loop spends most of its time here.
    ///
    /// [`write_bit`]: BitWriter::write_bit
    #[inline]
    pub fn write_bits(&mut self, value: u64, count: u32) {
        assert!(count <= 64, "cannot write more than 64 bits at once");
        let mut remaining = count;
        // Top up the trailing partial byte in one masked OR.
        if self.bit_pos != 0 && remaining > 0 {
            let free = 8 - u32::from(self.bit_pos);
            let take = free.min(remaining);
            let chunk = ((value >> (remaining - take)) & ((1 << take) - 1)) as u8;
            let last = self.bytes.len() - 1;
            self.bytes[last] |= chunk << (free - take);
            self.bit_pos = ((u32::from(self.bit_pos) + take) % 8) as u8;
            remaining -= take;
        }
        // Byte-aligned middle: one push per 8 bits.
        while remaining >= 8 {
            remaining -= 8;
            self.bytes.push(((value >> remaining) & 0xFF) as u8);
        }
        // Tail bits open a new partial byte, left-aligned.
        if remaining > 0 {
            let chunk = (value & ((1 << remaining) - 1)) as u8;
            self.bytes.push(chunk << (8 - remaining));
            self.bit_pos = remaining as u8;
        }
    }

    /// Append a whole byte (8 bits).
    pub fn write_byte(&mut self, byte: u8) {
        self.write_bits(u64::from(byte), 8);
    }

    /// Finish writing and return the padded byte vector (trailing bits are
    /// zero).
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Borrow the bytes written so far (including the partial last byte).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

/// Largest `count` accepted by [`BitReader::peek_bits`]: the peek gathers 8
/// bytes starting at the cursor's byte, of which up to 7 leading bits belong
/// to an earlier position.
pub const PEEK_MAX_BITS: u32 = 56;

/// Reads bits most-significant-bit first from a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Next bit to read, counted from the start of the stream.
    cursor: usize,
}

impl<'a> BitReader<'a> {
    /// Create a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, cursor: 0 }
    }

    /// Rewind to the start of the stream (reuse entry point mirroring
    /// [`BitWriter::clear`]).
    pub fn reset(&mut self) {
        self.cursor = 0;
    }

    /// Total number of bits available.
    pub fn bit_len(&self) -> usize {
        self.bytes.len() * 8
    }

    /// Number of bits remaining.
    pub fn remaining(&self) -> usize {
        self.bit_len().saturating_sub(self.cursor)
    }

    /// Read one bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<bool, CodecError> {
        if self.cursor >= self.bit_len() {
            return Err(CodecError::UnexpectedEof);
        }
        let byte = self.bytes[self.cursor / 8];
        let bit = (byte >> (7 - (self.cursor % 8))) & 1 == 1;
        self.cursor += 1;
        Ok(bit)
    }

    /// Read `count` bits (MSB first) into the low bits of a `u64`.
    pub fn read_bits(&mut self, count: u32) -> Result<u64, CodecError> {
        assert!(count <= 64, "cannot read more than 64 bits at once");
        if count <= PEEK_MAX_BITS && self.cursor + count as usize <= self.bit_len() {
            let value = self.peek_bits(count);
            self.cursor += count as usize;
            return Ok(value);
        }
        let mut value = 0u64;
        for _ in 0..count {
            value = (value << 1) | u64::from(self.read_bit()?);
        }
        Ok(value)
    }

    /// Look ahead `count` bits (MSB first) without consuming them; bits past
    /// the end of the stream read as zero. This is the primitive behind the
    /// table-driven Huffman decoder: peek a LUT index, then
    /// [`skip_bits`](BitReader::skip_bits) the decoded code length.
    #[inline]
    pub fn peek_bits(&self, count: u32) -> u64 {
        assert!(count <= PEEK_MAX_BITS, "cannot peek more than {PEEK_MAX_BITS} bits");
        if count == 0 {
            return 0;
        }
        let idx = self.cursor / 8;
        let off = (self.cursor % 8) as u32;
        // Gather the 8 bytes covering [cursor, cursor + 56) into a
        // big-endian accumulator, then slide the window to the cursor.
        let acc = match self.bytes.get(idx..idx + 8) {
            Some(window) => u64::from_be_bytes(window.try_into().expect("8 bytes")),
            None => {
                // Within 8 bytes of the end: zero-fill the missing tail.
                let mut acc = 0u64;
                for k in 0..8 {
                    acc = (acc << 8) | u64::from(self.bytes.get(idx + k).copied().unwrap_or(0));
                }
                acc
            }
        };
        (acc << off) >> (64 - count)
    }

    /// Advance the cursor by `count` bits; EOF if the stream is shorter.
    #[inline]
    pub fn skip_bits(&mut self, count: u32) -> Result<(), CodecError> {
        if self.cursor + count as usize > self.bit_len() {
            return Err(CodecError::UnexpectedEof);
        }
        self.cursor += count as usize;
        Ok(())
    }

    /// Read a whole byte.
    pub fn read_byte(&mut self) -> Result<u8, CodecError> {
        Ok(self.read_bits(8)? as u8)
    }

    /// Current bit position from the start of the stream.
    pub fn position(&self) -> usize {
        self.cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_roundtrip() {
        let pattern = [true, false, true, true, false, false, true, false, true, true, true];
        let mut w = BitWriter::new();
        for &b in &pattern {
            w.write_bit(b);
        }
        assert_eq!(w.bit_len(), pattern.len());
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit().unwrap(), b);
        }
        // Padding bits are zero.
        while r.remaining() > 0 {
            assert!(!r.read_bit().unwrap());
        }
        assert_eq!(r.read_bit(), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn multi_bit_values_roundtrip() {
        let values: [(u64, u32); 6] =
            [(0, 1), (1, 1), (5, 3), (0xDEADBEEF, 32), (u64::MAX, 64), (0b1011, 4)];
        let mut w = BitWriter::new();
        for &(v, n) in &values {
            w.write_bits(v, n);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &values {
            assert_eq!(r.read_bits(n).unwrap(), v, "value {v} width {n}");
        }
    }

    #[test]
    fn bytes_roundtrip_and_alignment() {
        let mut w = BitWriter::new();
        w.write_bit(true); // force misalignment
        for b in 0u8..=255 {
            w.write_byte(b);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert!(r.read_bit().unwrap());
        for b in 0u8..=255 {
            assert_eq!(r.read_byte().unwrap(), b);
        }
    }

    #[test]
    fn bit_len_and_position_track_progress() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(0b101, 3);
        assert_eq!(w.bit_len(), 3);
        w.write_bits(0xFF, 8);
        assert_eq!(w.bit_len(), 11);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 2);
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.bit_len(), 16);
        let _ = r.read_bits(5).unwrap();
        assert_eq!(r.position(), 5);
        assert_eq!(r.remaining(), 11);
    }

    #[test]
    fn eof_is_detected_mid_value() {
        let bytes = [0xAB];
        let mut r = BitReader::new(&bytes);
        assert!(r.read_bits(8).is_ok());
        assert_eq!(r.read_bits(1), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn clear_and_reset_support_reuse() {
        let mut w = BitWriter::new();
        w.write_bits(0xABCD, 16);
        w.clear();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(0b101, 3);
        assert_eq!(w.as_bytes(), &[0b1010_0000]);

        let bytes = [0xF0u8, 0x0F];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(12).unwrap(), 0xF00);
        r.reset();
        assert_eq!(r.position(), 0);
        assert_eq!(r.read_bits(4).unwrap(), 0xF);
    }

    #[test]
    fn peek_does_not_consume_and_zero_fills_past_end() {
        let bytes = [0b1011_0110u8, 0xFF];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.peek_bits(5), 0b10110);
        assert_eq!(r.peek_bits(5), 0b10110, "peek must not advance");
        r.skip_bits(3).unwrap();
        assert_eq!(r.peek_bits(8), 0b1011_0111);
        // 13 bits remain; a 16-bit peek zero-fills the missing tail.
        assert_eq!(r.peek_bits(16), 0b1011_0111_1111_1000);
        assert_eq!(r.peek_bits(0), 0);
        assert!(r.skip_bits(14).is_err(), "skip past EOF must fail");
        r.skip_bits(13).unwrap();
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.peek_bits(8), 0, "peek at EOF is all zeros");
    }

    #[test]
    fn batched_and_bitwise_writes_agree() {
        // The batched write_bits fast path must produce the exact bytes the
        // bit-by-bit loop produced (the byte-identity guarantee rests on it).
        let values: [(u64, u32); 8] = [
            (0b1, 1),
            (0xDEADBEEF, 32),
            (0, 7),
            (u64::MAX, 64),
            (0x1234, 13),
            (1, 2),
            (0xFF, 8),
            (0x7FFF_FFFF_FFFF_FFFF, 63),
        ];
        let mut batched = BitWriter::new();
        let mut bitwise = BitWriter::new();
        for &(v, n) in &values {
            batched.write_bits(v, n);
            for i in (0..n).rev() {
                bitwise.write_bit((v >> i) & 1 == 1);
            }
        }
        assert_eq!(batched.as_bytes(), bitwise.as_bytes());
        assert_eq!(batched.bit_len(), bitwise.bit_len());
    }

    #[test]
    fn msb_first_layout_is_stable() {
        // Guard the exact bit layout: 0b1010_0000 after writing bits 1,0,1,0.
        let mut w = BitWriter::new();
        for b in [true, false, true, false] {
            w.write_bit(b);
        }
        assert_eq!(w.as_bytes(), &[0b1010_0000]);
    }
}
