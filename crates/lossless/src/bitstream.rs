//! MSB-first bit-level writer and reader.

use crate::CodecError;

/// Accumulates bits most-significant-bit first into a byte vector.
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Number of bits already used in the trailing partial byte (0..=7).
    bit_pos: u8,
}

impl BitWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Number of whole bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.bit_pos == 0 {
            self.bytes.len() * 8
        } else {
            (self.bytes.len() - 1) * 8 + self.bit_pos as usize
        }
    }

    /// Append a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        if self.bit_pos == 0 {
            self.bytes.push(0);
        }
        if bit {
            let last = self.bytes.len() - 1;
            self.bytes[last] |= 1 << (7 - self.bit_pos);
        }
        self.bit_pos = (self.bit_pos + 1) % 8;
    }

    /// Append the lowest `count` bits of `value`, most significant first.
    pub fn write_bits(&mut self, value: u64, count: u32) {
        assert!(count <= 64, "cannot write more than 64 bits at once");
        for i in (0..count).rev() {
            self.write_bit((value >> i) & 1 == 1);
        }
    }

    /// Append a whole byte (8 bits).
    pub fn write_byte(&mut self, byte: u8) {
        self.write_bits(u64::from(byte), 8);
    }

    /// Finish writing and return the padded byte vector (trailing bits are
    /// zero).
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Borrow the bytes written so far (including the partial last byte).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

/// Reads bits most-significant-bit first from a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Next bit to read, counted from the start of the stream.
    cursor: usize,
}

impl<'a> BitReader<'a> {
    /// Create a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, cursor: 0 }
    }

    /// Total number of bits available.
    pub fn bit_len(&self) -> usize {
        self.bytes.len() * 8
    }

    /// Number of bits remaining.
    pub fn remaining(&self) -> usize {
        self.bit_len().saturating_sub(self.cursor)
    }

    /// Read one bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<bool, CodecError> {
        if self.cursor >= self.bit_len() {
            return Err(CodecError::UnexpectedEof);
        }
        let byte = self.bytes[self.cursor / 8];
        let bit = (byte >> (7 - (self.cursor % 8))) & 1 == 1;
        self.cursor += 1;
        Ok(bit)
    }

    /// Read `count` bits (MSB first) into the low bits of a `u64`.
    pub fn read_bits(&mut self, count: u32) -> Result<u64, CodecError> {
        assert!(count <= 64, "cannot read more than 64 bits at once");
        let mut value = 0u64;
        for _ in 0..count {
            value = (value << 1) | u64::from(self.read_bit()?);
        }
        Ok(value)
    }

    /// Read a whole byte.
    pub fn read_byte(&mut self) -> Result<u8, CodecError> {
        Ok(self.read_bits(8)? as u8)
    }

    /// Current bit position from the start of the stream.
    pub fn position(&self) -> usize {
        self.cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_roundtrip() {
        let pattern = [true, false, true, true, false, false, true, false, true, true, true];
        let mut w = BitWriter::new();
        for &b in &pattern {
            w.write_bit(b);
        }
        assert_eq!(w.bit_len(), pattern.len());
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit().unwrap(), b);
        }
        // Padding bits are zero.
        while r.remaining() > 0 {
            assert!(!r.read_bit().unwrap());
        }
        assert_eq!(r.read_bit(), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn multi_bit_values_roundtrip() {
        let values: [(u64, u32); 6] =
            [(0, 1), (1, 1), (5, 3), (0xDEADBEEF, 32), (u64::MAX, 64), (0b1011, 4)];
        let mut w = BitWriter::new();
        for &(v, n) in &values {
            w.write_bits(v, n);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &values {
            assert_eq!(r.read_bits(n).unwrap(), v, "value {v} width {n}");
        }
    }

    #[test]
    fn bytes_roundtrip_and_alignment() {
        let mut w = BitWriter::new();
        w.write_bit(true); // force misalignment
        for b in 0u8..=255 {
            w.write_byte(b);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert!(r.read_bit().unwrap());
        for b in 0u8..=255 {
            assert_eq!(r.read_byte().unwrap(), b);
        }
    }

    #[test]
    fn bit_len_and_position_track_progress() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(0b101, 3);
        assert_eq!(w.bit_len(), 3);
        w.write_bits(0xFF, 8);
        assert_eq!(w.bit_len(), 11);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 2);
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.bit_len(), 16);
        let _ = r.read_bits(5).unwrap();
        assert_eq!(r.position(), 5);
        assert_eq!(r.remaining(), 11);
    }

    #[test]
    fn eof_is_detected_mid_value() {
        let bytes = [0xAB];
        let mut r = BitReader::new(&bytes);
        assert!(r.read_bits(8).is_ok());
        assert_eq!(r.read_bits(1), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn msb_first_layout_is_stable() {
        // Guard the exact bit layout: 0b1010_0000 after writing bits 1,0,1,0.
        let mut w = BitWriter::new();
        for b in [true, false, true, false] {
            w.write_bit(b);
        }
        assert_eq!(w.as_bytes(), &[0b1010_0000]);
    }
}
