//! Canonical Huffman coding over `u32` symbols.
//!
//! SZ encodes its quantization codes with a Huffman coder before the final
//! lossless pass; this module provides the equivalent, self-describing
//! encoder/decoder:
//!
//! * symbol alphabet is discovered from the input (arbitrary `u32` symbols),
//! * code lengths are derived from a standard binary-heap Huffman tree,
//! * codes are made *canonical* so only (symbol, length) pairs need to be
//!   stored in the header,
//! * decode uses a table over (length, first-code, index) triples — the
//!   classic canonical decoding loop.

use crate::bitstream::{BitReader, BitWriter};
use crate::{read_varint, write_varint, CodecError};
use std::collections::BinaryHeap;
use std::collections::HashMap;

/// Maximum accepted code length. With ≤ 2^20 distinct symbols and the
/// depth-balancing property of Huffman trees over realistic count
/// distributions, 48 bits is far beyond anything reachable in practice but
/// protects the decoder against corrupt headers.
const MAX_CODE_LEN: u32 = 48;

/// Encode `symbols` into a self-describing byte stream.
///
/// The stream layout is:
/// `varint n_symbols | varint alphabet_size | (varint symbol, varint code_len)* | varint payload_bit_len | payload bits`
pub fn huffman_encode(symbols: &[u32]) -> Vec<u8> {
    let mut out = Vec::new();
    write_varint(&mut out, symbols.len() as u64);
    if symbols.is_empty() {
        return out;
    }

    // Histogram.
    let mut counts: HashMap<u32, u64> = HashMap::new();
    for &s in symbols {
        *counts.entry(s).or_insert(0) += 1;
    }
    let code_lengths = code_lengths_from_counts(&counts);
    let canonical = canonical_codes(&code_lengths);

    // Header: alphabet description.
    write_varint(&mut out, canonical.len() as u64);
    let mut ordered: Vec<(&u32, &(u32, u64))> = canonical.iter().collect();
    ordered.sort_by_key(|(sym, _)| **sym);
    for (sym, (len, _code)) in &ordered {
        write_varint(&mut out, u64::from(**sym));
        write_varint(&mut out, u64::from(*len));
    }

    // Payload.
    let mut writer = BitWriter::new();
    for &s in symbols {
        let (len, code) = canonical[&s];
        writer.write_bits(code, len);
    }
    write_varint(&mut out, writer.bit_len() as u64);
    out.extend_from_slice(&writer.into_bytes());
    out
}

/// Decode a stream produced by [`huffman_encode`]. Returns the symbols and
/// the number of bytes consumed from `bytes` (so callers can embed the
/// stream inside a larger container).
pub fn huffman_decode(bytes: &[u8]) -> Result<(Vec<u32>, usize), CodecError> {
    let mut offset = 0usize;
    let (n_symbols, used) = read_varint(&bytes[offset..])?;
    offset += used;
    if n_symbols == 0 {
        return Ok((Vec::new(), offset));
    }
    let (alphabet_size, used) = read_varint(&bytes[offset..])?;
    offset += used;
    if alphabet_size == 0 {
        return Err(CodecError::Corrupt("empty alphabet with non-empty payload".into()));
    }

    let mut lengths: Vec<(u32, u32)> = Vec::with_capacity(alphabet_size as usize);
    for _ in 0..alphabet_size {
        let (sym, used) = read_varint(&bytes[offset..])?;
        offset += used;
        let (len, used) = read_varint(&bytes[offset..])?;
        offset += used;
        if len == 0 || len > u64::from(MAX_CODE_LEN) {
            return Err(CodecError::Corrupt(format!("invalid code length {len}")));
        }
        lengths.push((sym as u32, len as u32));
    }

    let (payload_bits, used) = read_varint(&bytes[offset..])?;
    offset += used;
    let payload_bytes = (payload_bits as usize).div_ceil(8);
    if bytes.len() < offset + payload_bytes {
        return Err(CodecError::UnexpectedEof);
    }
    let payload = &bytes[offset..offset + payload_bytes];

    // Rebuild canonical codes from (symbol, length) pairs.
    let mut table: HashMap<u32, (u32, u64)> = HashMap::new();
    for (sym, len) in &lengths {
        table.insert(*sym, (*len, 0));
    }
    let lengths_map: HashMap<u32, u32> = lengths.iter().copied().collect();
    let canonical = canonical_codes(&lengths_map);

    // Decoding structure: for each length, the first canonical code of that
    // length and the symbols ordered canonically.
    let mut by_len: Vec<Vec<(u64, u32)>> = vec![Vec::new(); (MAX_CODE_LEN + 1) as usize];
    for (sym, (len, code)) in &canonical {
        by_len[*len as usize].push((*code, *sym));
    }
    for bucket in &mut by_len {
        bucket.sort_unstable();
    }

    // Special case: a single distinct symbol gets a 1-bit code.
    let single_symbol = if canonical.len() == 1 {
        Some(*canonical.keys().next().expect("non-empty map"))
    } else {
        None
    };

    let mut reader = BitReader::new(payload);
    let mut out = Vec::with_capacity(n_symbols as usize);
    while out.len() < n_symbols as usize {
        if let Some(sym) = single_symbol {
            // Consume the placeholder bit and emit the symbol.
            let _ = reader.read_bit()?;
            out.push(sym);
            continue;
        }
        let mut code = 0u64;
        let mut len = 0u32;
        loop {
            code = (code << 1) | u64::from(reader.read_bit()?);
            len += 1;
            if len > MAX_CODE_LEN {
                return Err(CodecError::Corrupt("code longer than maximum".into()));
            }
            let bucket = &by_len[len as usize];
            if bucket.is_empty() {
                continue;
            }
            if let Ok(pos) = bucket.binary_search_by_key(&code, |&(c, _)| c) {
                out.push(bucket[pos].1);
                break;
            }
            // Canonical codes of a given length form a contiguous range; if
            // the current prefix is below that range we must read more bits.
            if code < bucket[0].0 || code > bucket[bucket.len() - 1].0 {
                continue;
            }
            return Err(CodecError::Corrupt("invalid Huffman code".into()));
        }
    }
    let _ = table;
    Ok((out, offset + payload_bytes))
}

/// Huffman code lengths from symbol counts using a binary heap; a single
/// distinct symbol gets length 1.
fn code_lengths_from_counts(counts: &HashMap<u32, u64>) -> HashMap<u32, u32> {
    #[derive(PartialEq, Eq)]
    struct Node {
        weight: u64,
        // Tie-break on the smallest symbol in the subtree for determinism.
        order: u32,
        id: usize,
    }
    impl Ord for Node {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Reverse for a min-heap.
            other.weight.cmp(&self.weight).then(other.order.cmp(&self.order))
        }
    }
    impl PartialOrd for Node {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut lengths: HashMap<u32, u32> = HashMap::new();
    if counts.is_empty() {
        return lengths;
    }
    if counts.len() == 1 {
        let sym = *counts.keys().next().expect("non-empty");
        lengths.insert(sym, 1);
        return lengths;
    }

    // Tree nodes: leaves first, then internal nodes referencing children.
    let mut symbols: Vec<(u32, u64)> = counts.iter().map(|(&s, &c)| (s, c)).collect();
    symbols.sort_unstable();
    let mut children: Vec<Option<(usize, usize)>> = vec![None; symbols.len()];
    let mut leaf_symbol: Vec<Option<u32>> = symbols.iter().map(|&(s, _)| Some(s)).collect();

    let mut heap = BinaryHeap::new();
    for (id, &(sym, count)) in symbols.iter().enumerate() {
        heap.push(Node { weight: count, order: sym, id });
    }
    while heap.len() > 1 {
        let a = heap.pop().expect("len > 1");
        let b = heap.pop().expect("len > 1");
        let id = children.len();
        children.push(Some((a.id, b.id)));
        leaf_symbol.push(None);
        heap.push(Node { weight: a.weight + b.weight, order: a.order.min(b.order), id });
    }
    let root = heap.pop().expect("one node remains").id;

    // Depth-first traversal assigning depths to leaves.
    let mut stack = vec![(root, 0u32)];
    while let Some((node, depth)) = stack.pop() {
        match children[node] {
            Some((a, b)) => {
                stack.push((a, depth + 1));
                stack.push((b, depth + 1));
            }
            None => {
                let sym = leaf_symbol[node].expect("leaf has a symbol");
                lengths.insert(sym, depth.max(1));
            }
        }
    }
    lengths
}

/// Assign canonical codes given code lengths: symbols are sorted by
/// (length, symbol) and receive consecutive codes.
fn canonical_codes(lengths: &HashMap<u32, u32>) -> HashMap<u32, (u32, u64)> {
    let mut items: Vec<(u32, u32)> = lengths.iter().map(|(&s, &l)| (s, l)).collect();
    items.sort_by_key(|&(sym, len)| (len, sym));
    let mut out = HashMap::with_capacity(items.len());
    let mut code = 0u64;
    let mut prev_len = 0u32;
    for (sym, len) in items {
        if prev_len != 0 {
            code = (code + 1) << (len - prev_len);
        }
        out.insert(sym, (len, code));
        prev_len = len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(symbols: &[u32]) {
        let encoded = huffman_encode(symbols);
        let (decoded, used) = huffman_decode(&encoded).unwrap();
        assert_eq!(decoded, symbols);
        assert_eq!(used, encoded.len());
    }

    #[test]
    fn empty_input() {
        roundtrip(&[]);
    }

    #[test]
    fn single_distinct_symbol() {
        roundtrip(&[7; 100]);
    }

    #[test]
    fn two_symbols() {
        roundtrip(&[0, 1, 0, 0, 1, 0, 0, 0, 1]);
    }

    #[test]
    fn skewed_distribution_compresses() {
        // 90% zeros: the encoded stream must be much smaller than 4 bytes per
        // symbol.
        let mut symbols = vec![0u32; 9000];
        symbols.extend((0..1000).map(|i| (i % 17) as u32 + 1));
        let encoded = huffman_encode(&symbols);
        assert!(encoded.len() < symbols.len(), "{} vs {}", encoded.len(), symbols.len());
        roundtrip(&symbols);
    }

    #[test]
    fn uniform_large_alphabet() {
        let symbols: Vec<u32> = (0..4096u32).map(|i| i % 256).collect();
        roundtrip(&symbols);
    }

    #[test]
    fn sparse_large_symbol_values() {
        let symbols = vec![0u32, u32::MAX, 123_456_789, 42, u32::MAX, 42, 0, 0];
        roundtrip(&symbols);
    }

    #[test]
    fn pseudorandom_sequence() {
        let mut state = 0x12345678u64;
        let symbols: Vec<u32> = (0..10_000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) % 300) as u32
            })
            .collect();
        roundtrip(&symbols);
    }

    #[test]
    fn canonical_codes_are_prefix_free() {
        let mut counts = HashMap::new();
        for (s, c) in [(1u32, 40u64), (2, 30), (3, 20), (4, 9), (5, 1)] {
            counts.insert(s, c);
        }
        let lengths = code_lengths_from_counts(&counts);
        let codes = canonical_codes(&lengths);
        let entries: Vec<(u32, u64)> = codes.values().copied().collect();
        for (i, &(len_a, code_a)) in entries.iter().enumerate() {
            for (j, &(len_b, code_b)) in entries.iter().enumerate() {
                if i == j {
                    continue;
                }
                let (short, long) = if len_a <= len_b {
                    ((len_a, code_a), (len_b, code_b))
                } else {
                    ((len_b, code_b), (len_a, code_a))
                };
                let prefix = long.1 >> (long.0 - short.0);
                assert!(
                    !(short.0 != long.0 && prefix == short.1),
                    "code {:b}/{} is a prefix of {:b}/{}",
                    short.1,
                    short.0,
                    long.1,
                    long.0
                );
            }
        }
    }

    #[test]
    fn frequent_symbols_get_shorter_codes() {
        let mut counts = HashMap::new();
        counts.insert(0u32, 1000u64);
        counts.insert(1, 10);
        counts.insert(2, 10);
        counts.insert(3, 10);
        let lengths = code_lengths_from_counts(&counts);
        assert!(lengths[&0] <= lengths[&1]);
        assert!(lengths[&0] <= lengths[&3]);
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let encoded = huffman_encode(&[1, 2, 3, 1, 2, 3, 3, 3]);
        for cut in [1, encoded.len() / 2, encoded.len() - 1] {
            assert!(huffman_decode(&encoded[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn decode_reports_consumed_length_inside_container() {
        let encoded = huffman_encode(&[9, 9, 8, 7]);
        let mut container = encoded.clone();
        container.extend_from_slice(&[0xAA, 0xBB, 0xCC]);
        let (decoded, used) = huffman_decode(&container).unwrap();
        assert_eq!(decoded, vec![9, 9, 8, 7]);
        assert_eq!(used, encoded.len());
    }
}
