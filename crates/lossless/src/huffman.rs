//! Canonical Huffman coding over `u32` symbols.
//!
//! SZ and MGARD encode their quantization codes with a Huffman coder before
//! the final lossless pass; this module provides the equivalent,
//! self-describing encoder/decoder:
//!
//! * symbol alphabet is discovered from the input (arbitrary `u32` symbols),
//! * code lengths are derived from a standard binary-heap Huffman tree,
//! * codes are made *canonical* so only (symbol, length) pairs need to be
//!   stored in the header,
//! * decode is table-driven: a `LUT_BITS`-wide prefix table resolves the
//!   common short codes in one peek, with a canonical
//!   (length, first-code, offset) walk for the rare long ones.
//!
//! The hot paths are **allocation-free** when driven through
//! [`huffman_encode_with`] / [`huffman_decode_with`]: the histogram, tree,
//! code tables and bit buffers all live in a caller-owned
//! [`CodecScratch`](crate::CodecScratch). Dense `Vec`-indexed tables serve
//! the common tightly-clustered alphabets (quantization codes around the
//! zero-residual symbol); alphabets spanning more than ~2M symbol values
//! fall back to an open-addressed symbol map of the distinct symbols only.
//! The scratch-free wrappers produce **byte-identical** streams to the
//! historical `HashMap`-based encoder (pinned by the fixture tests in
//! `tests/bit_identity.rs`).
//!
//! ## The degenerate single-symbol alphabet
//!
//! A one-symbol alphabet is explicitly assigned code length **1**, never 0.
//! A 0-length code would make the payload ambiguous (`n` symbols in zero
//! bits cannot be distinguished from any other count on decode, and a
//! (symbol, 0) header entry is indistinguishable from corruption — decoders
//! reject `len == 0`). The encoder therefore spends one placeholder bit per
//! symbol, and the decoder consumes one bit per symbol *regardless of its
//! value* on this path; both directions are covered by
//! `single_distinct_symbol_*` tests below.

use crate::bitstream::BitReader;
use crate::scratch::{build_alphabet_into, CodecScratch, HeapNode, TableMode};
use crate::{read_varint, write_varint, CodecError};
use std::collections::BinaryHeap;

/// Maximum accepted code length. With ≤ 2^20 distinct symbols and the
/// depth-balancing property of Huffman trees over realistic count
/// distributions, 48 bits is far beyond anything reachable in practice but
/// protects the decoder against corrupt headers.
const MAX_CODE_LEN: u32 = 48;

/// Width of the decoder's prefix LUT: every code of at most this many bits
/// decodes with one peek + one table load. 12 bits covers the entire
/// alphabet of typical quantization-code distributions while keeping the
/// two tables at 4096 entries.
const LUT_BITS: u32 = 12;

/// Encode `symbols` into a self-describing byte stream.
///
/// The stream layout is:
/// `varint n_symbols | varint alphabet_size | (varint symbol, varint code_len)* | varint payload_bit_len | payload bits`
pub fn huffman_encode(symbols: &[u32]) -> Vec<u8> {
    let mut out = Vec::new();
    huffman_encode_with(&mut CodecScratch::new(), symbols, &mut out);
    out
}

/// [`huffman_encode`] into a caller-owned output buffer, reusing `scratch`
/// for every intermediate table. Appends to `out` (callers embed Huffman
/// sections inside larger containers). The emitted bytes are identical to
/// [`huffman_encode`]'s.
pub fn huffman_encode_with(scratch: &mut CodecScratch, symbols: &[u32], out: &mut Vec<u8>) {
    write_varint(out, symbols.len() as u64);
    if symbols.is_empty() {
        return;
    }

    let mode = build_alphabet(scratch, symbols);
    build_code_lengths(scratch);
    assign_canonical_codes(scratch, mode);

    // Header: alphabet description in ascending symbol order.
    write_varint(out, scratch.alphabet.len() as u64);
    for (k, &(sym, _)) in scratch.alphabet.iter().enumerate() {
        write_varint(out, u64::from(sym));
        write_varint(out, u64::from(scratch.lens[k]));
    }

    // Payload: one table lookup per symbol, with codes packed into a local
    // 64-bit accumulator so the bit writer is called once per ~5–20 symbols
    // instead of once per symbol. MSB-first concatenation is associative,
    // so the emitted bytes are unchanged.
    scratch.writer.clear();
    let mut acc = 0u64;
    let mut acc_bits = 0u32;
    match mode {
        TableMode::Dense { min } => {
            for &s in symbols {
                let idx = (s - min) as usize;
                let len = u32::from(scratch.enc_len[idx]);
                if acc_bits + len > 64 {
                    scratch.writer.write_bits(acc, acc_bits);
                    acc = 0;
                    acc_bits = 0;
                }
                acc = (acc << len) | scratch.enc_code[idx];
                acc_bits += len;
            }
        }
        TableMode::Sparse => {
            for &s in symbols {
                let slot = scratch.sym_map.get(s).expect("alphabet covers every symbol") as usize;
                let (len, code) = scratch.slot_codes[slot];
                if acc_bits + len > 64 {
                    scratch.writer.write_bits(acc, acc_bits);
                    acc = 0;
                    acc_bits = 0;
                }
                acc = (acc << len) | code;
                acc_bits += len;
            }
        }
    }
    if acc_bits > 0 {
        scratch.writer.write_bits(acc, acc_bits);
    }
    write_varint(out, scratch.writer.bit_len() as u64);
    out.extend_from_slice(scratch.writer.as_bytes());

    // Restore the all-zero invariant of the dense tables (O(distinct), not
    // O(span)).
    if let TableMode::Dense { min } = mode {
        for &(sym, _) in &scratch.alphabet {
            scratch.enc_len[(sym - min) as usize] = 0;
        }
    }
}

/// Histogram `symbols` into `scratch.alphabet` as `(symbol, count)` pairs
/// sorted by symbol, choosing dense or sparse table addressing by the
/// alphabet's value span (shared machinery with the rANS coder).
fn build_alphabet(scratch: &mut CodecScratch, symbols: &[u32]) -> TableMode {
    build_alphabet_into(
        &mut scratch.hist,
        &mut scratch.sym_map,
        &mut scratch.slot_counts,
        &mut scratch.alphabet,
        symbols,
    )
}

/// Huffman code lengths from `scratch.alphabet` into `scratch.lens`
/// (parallel arrays) using a binary heap over scratch-owned storage. A
/// single distinct symbol gets length 1 (see the module docs on the
/// degenerate alphabet). Identical merge order — and therefore identical
/// lengths — to the historical `HashMap`-based construction: node ties are
/// broken on the smallest symbol in the subtree, which is unique per node.
fn build_code_lengths(scratch: &mut CodecScratch) {
    let n = scratch.alphabet.len();
    scratch.lens.clear();
    scratch.lens.resize(n, 0);
    if n == 1 {
        scratch.lens[0] = 1;
        return;
    }

    scratch.children.clear();
    // Clear before heapifying: `BinaryHeap::from` would otherwise sift the
    // previous call's stale nodes just to throw them away.
    scratch.heap.clear();
    let mut heap = BinaryHeap::from(std::mem::take(&mut scratch.heap));
    for (id, &(sym, count)) in scratch.alphabet.iter().enumerate() {
        heap.push(HeapNode { weight: count, order: sym, id: id as u32 });
    }
    while heap.len() > 1 {
        let a = heap.pop().expect("len > 1");
        let b = heap.pop().expect("len > 1");
        let id = (n + scratch.children.len()) as u32;
        scratch.children.push((a.id, b.id));
        heap.push(HeapNode { weight: a.weight + b.weight, order: a.order.min(b.order), id });
    }
    let root = heap.pop().expect("one node remains").id;
    scratch.heap = heap.into_vec(); // recycle the heap allocation

    scratch.stack.clear();
    scratch.stack.push((root, 0));
    while let Some((node, depth)) = scratch.stack.pop() {
        if (node as usize) < n {
            scratch.lens[node as usize] = depth.max(1);
        } else {
            let (a, b) = scratch.children[node as usize - n];
            scratch.stack.push((a, depth + 1));
            scratch.stack.push((b, depth + 1));
        }
    }
}

/// Assign canonical codes — symbols sorted by (length, symbol) receive
/// consecutive codes — into the flat encode tables selected by `mode`.
fn assign_canonical_codes(scratch: &mut CodecScratch, mode: TableMode) {
    let n = scratch.alphabet.len();
    scratch.canon.clear();
    for (k, &(sym, _)) in scratch.alphabet.iter().enumerate() {
        scratch.canon.push((scratch.lens[k], sym, k as u32));
    }
    scratch.canon.sort_unstable();

    match mode {
        TableMode::Dense { min } => {
            let span = (scratch.alphabet.last().expect("non-empty").0 - min) as usize + 1;
            if scratch.enc_len.len() < span {
                scratch.enc_len.resize(span, 0);
                scratch.enc_code.resize(span, 0);
            }
        }
        TableMode::Sparse => {
            scratch.slot_codes.clear();
            scratch.slot_codes.resize(n, (0, 0));
        }
    }

    let mut code = 0u64;
    let mut prev_len = 0u32;
    for &(len, sym, _) in &scratch.canon {
        if prev_len != 0 {
            code = (code + 1) << (len - prev_len);
        }
        match mode {
            TableMode::Dense { min } => {
                let idx = (sym - min) as usize;
                scratch.enc_len[idx] = len as u8;
                scratch.enc_code[idx] = code;
            }
            TableMode::Sparse => {
                let slot = scratch.sym_map.get(sym).expect("alphabet symbol") as usize;
                scratch.slot_codes[slot] = (len, code);
            }
        }
        prev_len = len;
    }
}

/// Decode a stream produced by [`huffman_encode`]. Returns the symbols and
/// the number of bytes consumed from `bytes` (so callers can embed the
/// stream inside a larger container).
pub fn huffman_decode(bytes: &[u8]) -> Result<(Vec<u32>, usize), CodecError> {
    let mut out = Vec::new();
    let used = huffman_decode_with(&mut CodecScratch::new(), bytes, &mut out)?;
    Ok((out, used))
}

/// [`huffman_decode`] into a caller-owned symbol buffer (cleared first),
/// reusing `scratch` for the canonical tables and the prefix LUT. Returns
/// the number of bytes consumed.
pub fn huffman_decode_with(
    scratch: &mut CodecScratch,
    bytes: &[u8],
    out: &mut Vec<u32>,
) -> Result<usize, CodecError> {
    out.clear();
    let mut offset = 0usize;
    let (n_symbols, used) = read_varint(&bytes[offset..])?;
    offset += used;
    if n_symbols == 0 {
        return Ok(offset);
    }
    let (alphabet_size, used) = read_varint(&bytes[offset..])?;
    offset += used;
    if alphabet_size == 0 {
        return Err(CodecError::Corrupt("empty alphabet with non-empty payload".into()));
    }

    scratch.dec_lens.clear();
    // Each header entry costs at least two stream bytes (two varints), so
    // this reserve stays bounded by the actual input even when a corrupt
    // header claims an absurd alphabet (the parse loop below then fails
    // with UnexpectedEof instead of aborting on capacity overflow).
    scratch.dec_lens.reserve((alphabet_size as usize).min(bytes.len().saturating_sub(offset) / 2));
    for _ in 0..alphabet_size {
        let (sym, used) = read_varint(&bytes[offset..])?;
        offset += used;
        let (len, used) = read_varint(&bytes[offset..])?;
        offset += used;
        if len == 0 || len > u64::from(MAX_CODE_LEN) {
            return Err(CodecError::Corrupt(format!("invalid code length {len}")));
        }
        scratch.dec_lens.push((sym as u32, len as u32));
    }

    let (payload_bits, used) = read_varint(&bytes[offset..])?;
    offset += used;
    let payload_bytes = (payload_bits as usize).div_ceil(8);
    if bytes.len() < offset + payload_bytes {
        return Err(CodecError::UnexpectedEof);
    }
    let payload = &bytes[offset..offset + payload_bytes];
    let consumed = offset + payload_bytes;

    // A symbol costs at least one bit, so this reserve is bounded by the
    // actual payload even if a corrupt header claims an absurd count.
    out.reserve((n_symbols as usize).min(payload.len() * 8 + 1));
    let mut reader = BitReader::new(payload);

    // The degenerate single-symbol alphabet: one placeholder bit per symbol
    // (any value), see the module docs.
    if scratch.dec_lens.len() == 1 {
        let sym = scratch.dec_lens[0].0;
        for _ in 0..n_symbols {
            let _ = reader.read_bit()?;
            out.push(sym);
        }
        return Ok(consumed);
    }

    // Canonical reconstruction: sort (symbol, length) by (length, symbol),
    // assign consecutive codes, and record per-length (first code, count,
    // offset into the canonical symbol order). The same walk also fills the
    // prefix LUT — codes of at most `lut_bits` bits resolve with one peek,
    // longer codes fall through to the canonical walk (entry length 0).
    scratch.dec_lens.sort_unstable_by_key(|&(sym, len)| (len, sym));
    let max_len = scratch.dec_lens.last().expect("alphabet_size >= 1").1;
    let lut_bits = max_len.min(LUT_BITS);
    let lut_size = 1usize << lut_bits;
    scratch.lut_len.clear();
    scratch.lut_len.resize(lut_size, 0);
    if scratch.lut_sym.len() < lut_size {
        scratch.lut_sym.resize(lut_size, 0);
    }
    scratch.dec_syms.clear();
    let mut len_count = [0u32; (MAX_CODE_LEN + 1) as usize];
    let mut first_code = [0u64; (MAX_CODE_LEN + 1) as usize];
    let mut len_offset = [0u32; (MAX_CODE_LEN + 1) as usize];
    let mut code = 0u64;
    let mut prev_len = 0u32;
    for (k, &(sym, len)) in scratch.dec_lens.iter().enumerate() {
        if prev_len != 0 {
            code = (code + 1) << (len - prev_len);
        }
        // Kraft check: a canonical code must fit in its declared length. A
        // corrupt header whose lengths oversubscribe the code space (e.g.
        // three symbols all claiming length 1) fails here instead of
        // overrunning the LUT fill below.
        if code >> len != 0 {
            return Err(CodecError::Corrupt("code lengths oversubscribe the code space".into()));
        }
        if len != prev_len {
            first_code[len as usize] = code;
            len_offset[len as usize] = k as u32;
        }
        len_count[len as usize] += 1;
        scratch.dec_syms.push(sym);
        prev_len = len;
        if len <= lut_bits {
            let lo = (code << (lut_bits - len)) as usize;
            let hi = ((code + 1) << (lut_bits - len)) as usize;
            for entry in lo..hi {
                scratch.lut_len[entry] = len as u8;
                scratch.lut_sym[entry] = sym;
            }
        }
    }

    while out.len() < n_symbols as usize {
        // Fast path: enough bits left for a full-width peek.
        if reader.remaining() >= lut_bits as usize {
            let probe = reader.peek_bits(lut_bits) as usize;
            let len = scratch.lut_len[probe];
            if len != 0 {
                reader.skip_bits(u32::from(len))?;
                out.push(scratch.lut_sym[probe]);
                continue;
            }
        }
        // Slow path: canonical per-length walk (long codes and the final
        // sub-LUT-width bits of the stream).
        let mut code = 0u64;
        let mut len = 0u32;
        loop {
            code = (code << 1) | u64::from(reader.read_bit()?);
            len += 1;
            if len > max_len {
                return Err(CodecError::Corrupt("code longer than maximum".into()));
            }
            let count = len_count[len as usize];
            if count == 0 {
                continue;
            }
            let first = first_code[len as usize];
            if code >= first && code - first < u64::from(count) {
                let k = len_offset[len as usize] + (code - first) as u32;
                out.push(scratch.dec_syms[k as usize]);
                break;
            }
        }
    }
    Ok(consumed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(symbols: &[u32]) {
        let encoded = huffman_encode(symbols);
        let (decoded, used) = huffman_decode(&encoded).unwrap();
        assert_eq!(decoded, symbols);
        assert_eq!(used, encoded.len());
        // The scratch-reusing entry points agree bit for bit with the
        // wrappers, including when the same scratch served other inputs.
        let mut scratch = CodecScratch::new();
        let mut warmup = Vec::new();
        huffman_encode_with(&mut scratch, &[9, 9, 1, 2, 3, 9], &mut warmup);
        let mut with_out = Vec::new();
        huffman_encode_with(&mut scratch, symbols, &mut with_out);
        assert_eq!(with_out, encoded);
        let mut decoded_with = Vec::new();
        let used_with = huffman_decode_with(&mut scratch, &encoded, &mut decoded_with).unwrap();
        assert_eq!(decoded_with, symbols);
        assert_eq!(used_with, encoded.len());
    }

    #[test]
    fn empty_input() {
        roundtrip(&[]);
    }

    #[test]
    fn single_distinct_symbol() {
        roundtrip(&[7; 100]);
    }

    #[test]
    fn single_distinct_symbol_header_has_length_one_never_zero() {
        // The degenerate alphabet must spend a real (length-1) code: stream
        // is `varint n | alphabet 1 | (sym 7, len 1) | 100 payload bits`.
        let encoded = huffman_encode(&[7; 100]);
        let (n, used0) = read_varint(&encoded).unwrap();
        assert_eq!(n, 100);
        let (alpha, used1) = read_varint(&encoded[used0..]).unwrap();
        assert_eq!(alpha, 1);
        let (sym, used2) = read_varint(&encoded[used0 + used1..]).unwrap();
        assert_eq!(sym, 7);
        let (len, used3) = read_varint(&encoded[used0 + used1 + used2..]).unwrap();
        assert_eq!(len, 1, "single-symbol code length must be 1, not 0");
        let (bits, _) = read_varint(&encoded[used0 + used1 + used2 + used3..]).unwrap();
        assert_eq!(bits, 100, "one placeholder bit per symbol");
    }

    #[test]
    fn single_distinct_symbol_decode_ignores_placeholder_bit_values() {
        // The decoder consumes one bit per symbol regardless of value; a
        // stream whose placeholder bits are 1s decodes identically.
        let mut encoded = huffman_encode(&[3u32; 16]);
        let payload_start = encoded.len() - 2; // 16 bits of payload
        encoded[payload_start] = 0xFF;
        encoded[payload_start + 1] = 0xFF;
        let (decoded, _) = huffman_decode(&encoded).unwrap();
        assert_eq!(decoded, vec![3u32; 16]);
    }

    #[test]
    fn single_symbol_zero_length_header_is_rejected() {
        // Hand-craft the ambiguous header the encoder refuses to emit:
        // (symbol 7, code length 0).
        let mut bad = Vec::new();
        write_varint(&mut bad, 4); // n_symbols
        write_varint(&mut bad, 1); // alphabet_size
        write_varint(&mut bad, 7); // symbol
        write_varint(&mut bad, 0); // code length 0 — ambiguous, must be rejected
        write_varint(&mut bad, 0); // payload bits
        assert!(matches!(huffman_decode(&bad), Err(CodecError::Corrupt(_))));
    }

    #[test]
    fn two_symbols() {
        roundtrip(&[0, 1, 0, 0, 1, 0, 0, 0, 1]);
    }

    #[test]
    fn absurd_alphabet_size_is_an_eof_error_not_a_capacity_panic() {
        // A two-varint stream claiming a 2^62-entry alphabet must fail the
        // entry parse loop, not abort in Vec::reserve.
        let mut bad = Vec::new();
        write_varint(&mut bad, 1); // n_symbols
        write_varint(&mut bad, 1u64 << 62); // alphabet_size
        assert_eq!(huffman_decode(&bad), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn oversubscribed_code_lengths_are_rejected_not_a_panic() {
        // Three symbols all claiming length-1 codes violate the Kraft
        // inequality: the canonical assignment would hand symbol 2 the code
        // 0b10, which does not fit in one bit. The decoder must return
        // Corrupt (the pre-LUT decoder did) rather than overrun its tables.
        let mut bad = Vec::new();
        write_varint(&mut bad, 5); // n_symbols
        write_varint(&mut bad, 3); // alphabet_size
        for sym in 0u64..3 {
            write_varint(&mut bad, sym);
            write_varint(&mut bad, 1); // every code claims length 1
        }
        write_varint(&mut bad, 8); // payload bits
        bad.push(0b1010_1010);
        assert!(matches!(huffman_decode(&bad), Err(CodecError::Corrupt(_))));

        // Deeper variant: lengths {2, 2, 2, 2, 2} oversubscribe at length 2
        // only on the fifth entry.
        let mut bad = Vec::new();
        write_varint(&mut bad, 4);
        write_varint(&mut bad, 5);
        for sym in 0u64..5 {
            write_varint(&mut bad, sym);
            write_varint(&mut bad, 2);
        }
        write_varint(&mut bad, 8);
        bad.push(0);
        assert!(matches!(huffman_decode(&bad), Err(CodecError::Corrupt(_))));
    }

    #[test]
    fn skewed_distribution_compresses() {
        // 90% zeros: the encoded stream must be much smaller than 4 bytes per
        // symbol.
        let mut symbols = vec![0u32; 9000];
        symbols.extend((0..1000).map(|i| (i % 17) as u32 + 1));
        let encoded = huffman_encode(&symbols);
        assert!(encoded.len() < symbols.len(), "{} vs {}", encoded.len(), symbols.len());
        roundtrip(&symbols);
    }

    #[test]
    fn uniform_large_alphabet() {
        let symbols: Vec<u32> = (0..4096u32).map(|i| i % 256).collect();
        roundtrip(&symbols);
    }

    #[test]
    fn sparse_large_symbol_values() {
        // Span > DENSE_SPAN_MAX: exercises the symbol-map fallback.
        let symbols = vec![0u32, u32::MAX, 123_456_789, 42, u32::MAX, 42, 0, 0];
        roundtrip(&symbols);
    }

    #[test]
    fn mgard_like_alphabet_with_escape_code() {
        // MGARD's shape: codes clustered around 2^30 plus the escape 0 —
        // a huge span with few distinct values (sparse tables).
        let mut symbols = Vec::new();
        for i in 0..5000u32 {
            symbols.push(if i % 97 == 0 { 0 } else { (1 << 30) + (i % 7) });
        }
        roundtrip(&symbols);
    }

    #[test]
    fn pseudorandom_sequence() {
        let mut state = 0x12345678u64;
        let symbols: Vec<u32> = (0..10_000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) % 300) as u32
            })
            .collect();
        roundtrip(&symbols);
    }

    #[test]
    fn codes_longer_than_the_lut_decode_through_the_slow_path() {
        // A steep geometric distribution forces code lengths past LUT_BITS,
        // so both decoder paths run within one stream.
        let mut symbols = Vec::new();
        for s in 0..20u32 {
            let copies = 1usize << s.min(18);
            symbols.extend(std::iter::repeat_n(s, copies));
        }
        roundtrip(&symbols);
    }

    #[test]
    fn scratch_reuse_across_dense_and_sparse_alphabets() {
        // Alternating dense/sparse inputs through one scratch must not leak
        // state between calls (the all-zero dense-table invariant).
        let mut scratch = CodecScratch::new();
        let dense: Vec<u32> = (0..500u32).map(|i| i % 40).collect();
        let sparse = vec![5u32, 1 << 31, 0, 5, 1 << 31, 77];
        for _ in 0..3 {
            for input in [&dense, &sparse] {
                let mut out = Vec::new();
                huffman_encode_with(&mut scratch, input, &mut out);
                assert_eq!(out, huffman_encode(input));
                let mut decoded = Vec::new();
                huffman_decode_with(&mut scratch, &out, &mut decoded).unwrap();
                assert_eq!(&decoded, input);
            }
        }
    }

    #[test]
    fn canonical_codes_are_prefix_free() {
        let mut scratch = CodecScratch::new();
        let symbols: Vec<u32> = [(1u32, 40usize), (2, 30), (3, 20), (4, 9), (5, 1)]
            .iter()
            .flat_map(|&(s, c)| std::iter::repeat_n(s, c))
            .collect();
        let mode = build_alphabet(&mut scratch, &symbols);
        build_code_lengths(&mut scratch);
        assign_canonical_codes(&mut scratch, mode);
        let TableMode::Dense { min } = mode else {
            panic!("tight alphabet must take the dense path");
        };
        let entries: Vec<(u32, u64)> = scratch
            .alphabet
            .iter()
            .map(|&(sym, _)| {
                let idx = (sym - min) as usize;
                (u32::from(scratch.enc_len[idx]), scratch.enc_code[idx])
            })
            .collect();
        for (i, &(len_a, code_a)) in entries.iter().enumerate() {
            for (j, &(len_b, code_b)) in entries.iter().enumerate() {
                if i == j {
                    continue;
                }
                let (short, long) = if len_a <= len_b {
                    ((len_a, code_a), (len_b, code_b))
                } else {
                    ((len_b, code_b), (len_a, code_a))
                };
                let prefix = long.1 >> (long.0 - short.0);
                assert!(
                    !(short.0 != long.0 && prefix == short.1),
                    "code {:b}/{} is a prefix of {:b}/{}",
                    short.1,
                    short.0,
                    long.1,
                    long.0
                );
            }
        }
    }

    #[test]
    fn frequent_symbols_get_shorter_codes() {
        let mut symbols = vec![0u32; 1000];
        for s in [1u32, 2, 3] {
            symbols.extend(std::iter::repeat_n(s, 10));
        }
        let mut scratch = CodecScratch::new();
        build_alphabet(&mut scratch, &symbols);
        build_code_lengths(&mut scratch);
        // alphabet is symbol-sorted: index 0 is symbol 0.
        assert!(scratch.lens[0] <= scratch.lens[1]);
        assert!(scratch.lens[0] <= scratch.lens[3]);
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let encoded = huffman_encode(&[1, 2, 3, 1, 2, 3, 3, 3]);
        for cut in [1, encoded.len() / 2, encoded.len() - 1] {
            assert!(huffman_decode(&encoded[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn decode_reports_consumed_length_inside_container() {
        let encoded = huffman_encode(&[9, 9, 8, 7]);
        let mut container = encoded.clone();
        container.extend_from_slice(&[0xAA, 0xBB, 0xCC]);
        let (decoded, used) = huffman_decode(&container).unwrap();
        assert_eq!(decoded, vec![9, 9, 8, 7]);
        assert_eq!(used, encoded.len());
    }
}
