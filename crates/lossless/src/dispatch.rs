//! Runtime SIMD dispatch for the codec hot-path kernels.
//!
//! Every vectorized kernel in the workspace (the rANS decode loop, the LZ77
//! match comparator, the SZ plane-predict/quantize row kernel, the ZFP block
//! transform, the xxh64 stripe loop) asks this module which tier to run at.
//! The guarantees are:
//!
//! * **One-time detection.** [`simd_level`] probes the CPU once (via
//!   `is_x86_feature_detected!` on x86_64; NEON is assumed on aarch64;
//!   everything else is scalar) and caches the answer in a `OnceLock`.
//! * **Byte-identical streams.** A SIMD tier is only ever an implementation
//!   of the scalar kernel — same outputs, same errors, same consumed byte
//!   counts — so streams written at any tier decode at any other tier and
//!   the binary fixtures pin one set of bytes for all of them.
//! * **Override for testing.** `LCC_SIMD=off|sse4|avx2|neon` forces a tier
//!   at or below the detected one (CI runs the suite at `off` and at the
//!   default). Requests above the hardware's capability clamp down to the
//!   detected level — the override can never select an illegal instruction.
//!   An unrecognized value panics: a typo in a CI matrix must fail loudly,
//!   not silently benchmark the wrong tier.
//!
//! Kernels take an explicit [`SimdLevel`] argument in their `*_at` entry
//! points (used by the equivalence tests and the per-kernel benchmarks) and
//! read the process-wide level in their plain entry points. Each kernel maps
//! the level to the best implementation it has at or below that tier — e.g.
//! the ZFP transform has only scalar and AVX2 implementations, so `sse4`
//! runs it scalar, and the NEON tier currently lowers every kernel to its
//! scalar loop (the dispatch seam is in place for a future NEON pass).

use std::sync::OnceLock;

/// A SIMD capability tier, ordered from narrowest to widest.
///
/// The ordering is what kernels dispatch on: a kernel runs its widest
/// implementation at or below the active level. `Neon` sorts above the x86
/// tiers only because the two families never coexist on one host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SimdLevel {
    /// Portable scalar loops only.
    Scalar,
    /// x86_64 SSE4.1 (128-bit integer lanes).
    Sse4,
    /// x86_64 AVX2 (256-bit lanes).
    Avx2,
    /// aarch64 NEON (128-bit lanes, assumed present on every aarch64).
    Neon,
}

impl SimdLevel {
    /// The label used by the `LCC_SIMD` override and the benchmark JSON
    /// schema (`"off"` for scalar, matching the override vocabulary).
    pub fn label(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "off",
            SimdLevel::Sse4 => "sse4",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Neon => "neon",
        }
    }

    /// Parse an `LCC_SIMD` override value.
    fn parse(value: &str) -> Option<SimdLevel> {
        match value {
            "off" | "scalar" => Some(SimdLevel::Scalar),
            "sse4" | "sse4.1" => Some(SimdLevel::Sse4),
            "avx2" => Some(SimdLevel::Avx2),
            "neon" => Some(SimdLevel::Neon),
            _ => None,
        }
    }
}

/// Probe the hardware for the widest supported tier.
fn detect() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            SimdLevel::Avx2
        } else if std::arch::is_x86_feature_detected!("sse4.1") {
            SimdLevel::Sse4
        } else {
            SimdLevel::Scalar
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        SimdLevel::Neon
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        SimdLevel::Scalar
    }
}

/// The hardware's widest supported tier, ignoring any `LCC_SIMD` override.
pub fn detected_level() -> SimdLevel {
    static DETECTED: OnceLock<SimdLevel> = OnceLock::new();
    *DETECTED.get_or_init(detect)
}

/// The active dispatch tier: the detected level, lowered by `LCC_SIMD` when
/// set. Cached after the first call — the hot paths pay one atomic load.
///
/// # Panics
/// Panics when `LCC_SIMD` is set to something other than
/// `off|scalar|sse4|avx2|neon` (or empty, which counts as unset).
pub fn simd_level() -> SimdLevel {
    static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        let detected = detected_level();
        match std::env::var("LCC_SIMD") {
            Ok(value) if !value.is_empty() => {
                let requested = SimdLevel::parse(&value).unwrap_or_else(|| {
                    panic!("LCC_SIMD={value} is not one of off|scalar|sse4|avx2|neon")
                });
                if supported_levels().contains(&requested) {
                    requested
                } else {
                    // Requesting a tier the hardware (or architecture) lacks
                    // clamps to the detected level instead of faulting.
                    detected
                }
            }
            _ => detected,
        }
    })
}

/// Every tier the current hardware can actually execute, narrowest first.
/// Always contains [`SimdLevel::Scalar`]; the equivalence tests iterate this
/// so scalar-vs-SIMD identity is checked at every level the host supports.
pub fn supported_levels() -> &'static [SimdLevel] {
    match detected_level() {
        SimdLevel::Scalar => &[SimdLevel::Scalar],
        SimdLevel::Sse4 => &[SimdLevel::Scalar, SimdLevel::Sse4],
        SimdLevel::Avx2 => &[SimdLevel::Scalar, SimdLevel::Sse4, SimdLevel::Avx2],
        SimdLevel::Neon => &[SimdLevel::Scalar, SimdLevel::Neon],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered() {
        assert!(SimdLevel::Scalar < SimdLevel::Sse4);
        assert!(SimdLevel::Sse4 < SimdLevel::Avx2);
    }

    #[test]
    fn labels_match_the_override_vocabulary() {
        for (level, label) in [
            (SimdLevel::Scalar, "off"),
            (SimdLevel::Sse4, "sse4"),
            (SimdLevel::Avx2, "avx2"),
            (SimdLevel::Neon, "neon"),
        ] {
            assert_eq!(level.label(), label);
            assert_eq!(SimdLevel::parse(label), Some(level));
        }
        assert_eq!(SimdLevel::parse("scalar"), Some(SimdLevel::Scalar));
        assert_eq!(SimdLevel::parse("avx512"), None);
        assert_eq!(SimdLevel::parse(""), None);
    }

    #[test]
    fn supported_levels_start_scalar_and_end_detected() {
        let levels = supported_levels();
        assert_eq!(levels.first(), Some(&SimdLevel::Scalar));
        assert_eq!(levels.last(), Some(&detected_level()));
        // The active level is always one the hardware supports.
        assert!(levels.contains(&simd_level()));
    }

    #[test]
    fn detection_is_stable() {
        assert_eq!(detected_level(), detected_level());
        assert_eq!(simd_level(), simd_level());
    }
}
