//! # lcc-lossless — lossless back-end coders for the lossy compressors
//!
//! SZ and MGARD both end their pipelines with an entropy stage (Huffman over
//! quantization codes) followed by a general-purpose lossless compressor
//! (Zstd in the reference implementations). This crate provides those
//! building blocks from scratch:
//!
//! * [`bitstream`] — MSB-first bit-level writer/reader used by every coder
//!   (and by the ZFP-style embedded bit-plane coder),
//! * [`huffman`] — canonical Huffman coding over `u32` symbols with an
//!   embedded code-length table (table-driven encode and LUT decode),
//! * [`lz77`] — greedy hash-chain LZ77 with byte-oriented token encoding,
//! * [`rans`] — 2-way and 8-way interleaved byte-oriented rANS coders
//!   (shared 12-bit normalized tables, self-describing mode byte), the
//!   fast-path entropy backends of the ratio-vs-throughput ablation; the
//!   8-way format splits its payload into per-lane buffers so the decoder
//!   runs eight independent chains (SSE4.1 unrolled, AVX2 two 4×u64 state
//!   vectors with gathered slot lookups); [`pipeline::EntropyBackend`]
//!   names the Huffman/rANS/rANS-8 choice the compressors thread through
//!   their streams,
//! * [`rle`] — zero-run-length pre-pass that pairs well with quantization
//!   codes dominated by the "perfectly predicted" symbol,
//! * [`dispatch`] — one-time runtime SIMD feature detection
//!   ([`SimdLevel`], the `LCC_SIMD` override); the rANS decode loop, the
//!   LZ77 comparator, and the [`xxhash`] stripe loop pick their widest
//!   implementation at or below the active tier, with byte-identical
//!   streams at every tier,
//! * [`xxhash`] — XXH64 checksums (scalar + AVX2 stripe loop) used for the
//!   framed container's optional per-block integrity checksums,
//! * [`pipeline`] — the composition `Huffman → LZ77` exposed through the
//!   [`pipeline::ByteCodec`] trait, mirroring the role Zstd plays for
//!   SZ/MGARD,
//! * [`scratch`] — the [`CodecScratch`] arena holding every reusable buffer
//!   of the Huffman/LZ77 hot paths; the `*_with` entry points
//!   ([`huffman_encode_with`], [`huffman_decode_with`],
//!   [`lz77_compress_with`], [`lz77_decompress_into`]) are allocation-free
//!   in steady state.
//!
//! All encoders produce self-describing byte streams (length-prefixed
//! sections), so decoding needs no out-of-band metadata.

pub mod bitstream;
pub mod dispatch;
pub mod huffman;
pub mod lz77;
pub mod pipeline;
pub mod rans;
pub mod rle;
pub mod scratch;
pub mod xxhash;

pub use bitstream::{BitReader, BitWriter};
pub use dispatch::{detected_level, simd_level, supported_levels, SimdLevel};
pub use huffman::{huffman_decode, huffman_decode_with, huffman_encode, huffman_encode_with};
pub use lz77::{
    lz77_compress, lz77_compress_with, lz77_compress_with_at, lz77_decompress,
    lz77_decompress_into, match_length_at,
};
pub use pipeline::{ByteCodec, EntropyBackend, HuffLzCodec, RansCodec, RawCodec};
pub use rans::{
    rans8_decode, rans8_decode_bytes_with, rans8_decode_bytes_with_at, rans8_decode_with,
    rans8_decode_with_at, rans8_encode, rans8_encode_bytes_with, rans8_encode_with, rans_decode,
    rans_decode_bytes_with, rans_decode_bytes_with_at, rans_decode_with, rans_decode_with_at,
    rans_encode, rans_encode_bytes_with, rans_encode_with, RansScratch,
};
pub use scratch::CodecScratch;
pub use xxhash::{xxh64, xxh64_at};

/// Errors produced while decoding a lossless stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The stream ended before the decoder expected it to.
    UnexpectedEof,
    /// The stream contains a structural inconsistency (bad header, invalid
    /// code, impossible back-reference…).
    Corrupt(String),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of stream"),
            CodecError::Corrupt(msg) => write!(f, "corrupt stream: {msg}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Write a `u64` as a variable-length LEB128-style integer.
pub fn write_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// Read a varint written by [`write_varint`]; returns the value and the
/// number of bytes consumed.
pub fn read_varint(bytes: &[u8]) -> Result<(u64, usize), CodecError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    for (i, &b) in bytes.iter().enumerate() {
        if shift >= 64 {
            return Err(CodecError::Corrupt("varint too long".into()));
        }
        value |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok((value, i + 1));
        }
        shift += 7;
    }
    Err(CodecError::UnexpectedEof)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 255, 300, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let (back, used) = read_varint(&buf).unwrap();
            assert_eq!(back, v);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn varint_detects_truncation() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 1_000_000);
        buf.pop();
        assert_eq!(read_varint(&buf), Err(CodecError::UnexpectedEof));
        assert_eq!(read_varint(&[]), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn varint_rejects_overlong() {
        let buf = [0x80u8; 11];
        assert!(matches!(read_varint(&buf), Err(CodecError::Corrupt(_))));
    }

    #[test]
    fn error_display() {
        assert!(CodecError::UnexpectedEof.to_string().contains("end of stream"));
        assert!(CodecError::Corrupt("x".into()).to_string().contains("x"));
    }
}
