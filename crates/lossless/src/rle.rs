//! Zero-run-length coding over `u32` symbol streams.
//!
//! Quantization-code streams from predictive compressors are dominated by a
//! single "perfect prediction" symbol on smooth data. Collapsing runs of that
//! symbol before Huffman coding gives the entropy coder a shorter, less
//! skewed stream to work on.
//!
//! Encoding: the stream is mapped to a sequence of `u32` tokens where
//! `ESCAPE` (= `u32::MAX`) is followed by the run length of the designated
//! `run_symbol`. Occurrences of `ESCAPE` itself in the input are doubled so
//! the mapping stays reversible.

use crate::CodecError;

/// Escape token marking a run (and escaping itself).
pub const ESCAPE: u32 = u32::MAX;

/// Encode runs of `run_symbol` in `symbols`.
pub fn rle_encode(symbols: &[u32], run_symbol: u32) -> Vec<u32> {
    let mut out = Vec::with_capacity(symbols.len() / 2 + 8);
    let mut i = 0usize;
    while i < symbols.len() {
        let s = symbols[i];
        if s == run_symbol {
            let mut j = i;
            while j < symbols.len() && symbols[j] == run_symbol {
                j += 1;
            }
            let run = (j - i) as u32;
            if run >= 3 {
                out.push(ESCAPE);
                out.push(run);
                i = j;
                continue;
            }
            // Short runs are cheaper verbatim (unless the symbol is ESCAPE,
            // handled below).
        }
        if s == ESCAPE {
            // Escape the escape: ESCAPE followed by 0 means a literal ESCAPE.
            out.push(ESCAPE);
            out.push(0);
        } else {
            out.push(s);
        }
        i += 1;
    }
    out
}

/// Decode a stream produced by [`rle_encode`] with the same `run_symbol`.
pub fn rle_decode(tokens: &[u32], run_symbol: u32) -> Result<Vec<u32>, CodecError> {
    let mut out = Vec::with_capacity(tokens.len() * 2);
    let mut i = 0usize;
    while i < tokens.len() {
        let t = tokens[i];
        if t == ESCAPE {
            let Some(&arg) = tokens.get(i + 1) else {
                return Err(CodecError::UnexpectedEof);
            };
            if arg == 0 {
                out.push(ESCAPE);
            } else {
                out.extend(std::iter::repeat(run_symbol).take(arg as usize));
            }
            i += 2;
        } else {
            out.push(t);
            i += 1;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(symbols: &[u32], run_symbol: u32) -> usize {
        let encoded = rle_encode(symbols, run_symbol);
        let decoded = rle_decode(&encoded, run_symbol).unwrap();
        assert_eq!(decoded, symbols);
        encoded.len()
    }

    #[test]
    fn empty_and_short() {
        assert_eq!(roundtrip(&[], 0), 0);
        roundtrip(&[1, 2, 3], 0);
        roundtrip(&[0, 0], 0); // run shorter than 3 stays verbatim
    }

    #[test]
    fn long_runs_shrink() {
        let mut symbols = vec![512u32; 10_000];
        symbols.push(7);
        symbols.extend(vec![512u32; 5_000]);
        let n = roundtrip(&symbols, 512);
        assert!(n <= 5, "rle produced {n} tokens");
    }

    #[test]
    fn runs_of_other_symbols_are_untouched() {
        let symbols = vec![3u32; 100];
        let encoded = rle_encode(&symbols, 5);
        assert_eq!(encoded.len(), 100);
        assert_eq!(rle_decode(&encoded, 5).unwrap(), symbols);
    }

    #[test]
    fn escape_symbol_is_preserved() {
        let symbols = vec![ESCAPE, 1, ESCAPE, ESCAPE, 2, ESCAPE];
        roundtrip(&symbols, 1);
        // Even when the run symbol is ESCAPE itself, runs collapse correctly.
        let symbols = vec![ESCAPE; 50];
        roundtrip(&symbols, ESCAPE);
    }

    #[test]
    fn mixed_content() {
        let mut symbols = Vec::new();
        for k in 0..200u32 {
            symbols.push(k % 7);
            if k % 3 == 0 {
                symbols.extend(vec![42u32; (k % 11) as usize]);
            }
        }
        roundtrip(&symbols, 42);
    }

    #[test]
    fn truncated_escape_is_an_error() {
        let encoded = vec![ESCAPE];
        assert_eq!(rle_decode(&encoded, 0), Err(CodecError::UnexpectedEof));
    }
}
