//! Bit-identity gate for the table-driven codec rewrite.
//!
//! `tests/fixtures/*.bin` were captured from the pre-refactor (PR 2)
//! `HashMap`-based Huffman encoder and byte-at-a-time LZ77 encoder. The
//! refactored, scratch-driven encoders must reproduce those streams **byte
//! for byte** — every compressor embeds these streams, so a silent encoding
//! change would invalidate all previously written archives and the
//! cross-compressor regression hashes in `tests/stream_identity.rs` (crate
//! `lcc_core`).
//!
//! If a future PR intentionally changes the stream format, it must
//! regenerate the fixtures and say so loudly in its change log.

use lcc_lossless::{
    huffman_decode, huffman_encode, huffman_encode_with, lz77_compress, lz77_compress_with,
    lz77_decompress, CodecScratch,
};

fn fixture(name: &str) -> Vec<u8> {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read(&path).unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()))
}

fn lcg(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *state >> 33
}

/// The inputs behind the Huffman fixtures, regenerated deterministically.
fn huffman_inputs() -> Vec<(&'static str, Vec<u32>)> {
    let mut out: Vec<(&'static str, Vec<u32>)> = vec![
        ("huffman_empty.bin", Vec::new()),
        ("huffman_single_symbol.bin", vec![7u32; 100]),
        ("huffman_two_symbols.bin", vec![0, 1, 0, 0, 1, 0, 0, 0, 1]),
        (
            "huffman_sparse_large.bin",
            vec![0u32, u32::MAX, 123_456_789, 42, u32::MAX, 42, 0, 0, 7, 7, 7],
        ),
    ];
    let mut state = 0x1234_5678u64;
    let skew: Vec<u32> = (0..20_000).map(|_| lcg(&mut state).trailing_zeros() % 24).collect();
    out.push(("huffman_geometric_skew.bin", skew));
    let mut state = 0x9E37_79B9u64;
    let wide: Vec<u32> = (0..3000).map(|_| (lcg(&mut state) & 0xFFFF) as u32).collect();
    out.push(("huffman_uniform_u16.bin", wide));
    out
}

/// The inputs behind the LZ77 fixtures.
fn lz77_inputs() -> Vec<(&'static str, Vec<u8>)> {
    let mut out: Vec<(&'static str, Vec<u8>)> = vec![
        ("lz77_empty.bin", Vec::new()),
        (
            "lz77_repetitive_text.bin",
            b"hello world, ".iter().copied().cycle().take(10_000).collect(),
        ),
        ("lz77_zero_run.bin", vec![0u8; 65_000]),
    ];
    let mut doubles = Vec::new();
    for i in 0..4096 {
        let v = (i / 16) as f64 * 0.125 + 1.0;
        doubles.extend_from_slice(&v.to_le_bytes());
    }
    out.push(("lz77_structured_doubles.bin", doubles));
    let mut s = 0x9E3779B97F4A7C15u64;
    let noise: Vec<u8> = (0..30_000)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s & 0xFF) as u8
        })
        .collect();
    out.push(("lz77_incompressible.bin", noise));
    out
}

#[test]
fn huffman_streams_match_pre_refactor_fixtures() {
    let mut scratch = CodecScratch::new();
    for (name, input) in huffman_inputs() {
        let expected = fixture(name);
        assert_eq!(huffman_encode(&input), expected, "{name}: fresh-scratch wrapper diverged");
        let mut with_out = Vec::new();
        huffman_encode_with(&mut scratch, &input, &mut with_out);
        assert_eq!(with_out, expected, "{name}: reused-scratch stream diverged");
        let (decoded, used) = huffman_decode(&expected).expect(name);
        assert_eq!(decoded, input, "{name}: fixture no longer decodes to its input");
        assert_eq!(used, expected.len(), "{name}: consumed length changed");
    }
}

#[test]
fn lz77_streams_match_pre_refactor_fixtures() {
    let mut scratch = CodecScratch::new();
    for (name, input) in lz77_inputs() {
        let expected = fixture(name);
        assert_eq!(lz77_compress(&input), expected, "{name}: fresh-scratch wrapper diverged");
        let mut with_out = Vec::new();
        lz77_compress_with(&mut scratch, &input, &mut with_out);
        assert_eq!(with_out, expected, "{name}: reused-scratch stream diverged");
        assert_eq!(
            lz77_decompress(&expected).expect(name),
            input,
            "{name}: fixture no longer decodes to its input"
        );
    }
}
