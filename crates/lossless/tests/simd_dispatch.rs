//! Byte-identity gate for the runtime-dispatched SIMD kernels.
//!
//! Every SIMD tier the host supports must reproduce the scalar kernels'
//! bytes exactly — same compressed streams, same decoded symbols, same
//! digests, same errors on the same truncated inputs. The fixture checks
//! additionally pin the SIMD encoders to the historical stream format: the
//! `tests/fixtures/*.bin` streams were captured long before the SIMD pass
//! existed, so a vector path that drifted from the scalar match/emit
//! decisions would fail here before it could invalidate archives.

use lcc_lossless::{
    lz77_compress_with_at, lz77_decompress, rans8_decode_bytes_with_at, rans8_decode_with_at,
    rans8_encode, rans8_encode_bytes_with, rans_decode_bytes_with_at, rans_decode_with_at,
    rans_encode, rans_encode_bytes_with, supported_levels, xxh64_at, CodecScratch, RansScratch,
    SimdLevel,
};

fn fixture(name: &str) -> Vec<u8> {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read(&path).unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()))
}

fn lcg(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *state >> 33
}

#[test]
fn the_host_supports_at_least_the_scalar_tier() {
    let levels = supported_levels();
    assert_eq!(levels[0], SimdLevel::Scalar);
    assert!(!levels.is_empty());
}

/// Inputs with known fixture streams, regenerated deterministically (same
/// generators as `bit_identity.rs`).
fn lz77_fixture_inputs() -> Vec<(&'static str, Vec<u8>)> {
    vec![
        (
            "lz77_repetitive_text.bin",
            b"hello world, ".iter().copied().cycle().take(10_000).collect(),
        ),
        ("lz77_zero_run.bin", vec![0u8; 65_000]),
    ]
}

#[test]
fn every_level_reproduces_the_lz77_fixture_streams() {
    let mut scratch = CodecScratch::new();
    for (name, input) in lz77_fixture_inputs() {
        let expected = fixture(name);
        for &level in supported_levels() {
            let mut out = Vec::new();
            lz77_compress_with_at(&mut scratch, level, &input, &mut out);
            assert_eq!(out, expected, "{name} at {level:?}");
        }
    }
}

#[test]
fn every_level_compresses_mixed_entropy_bytes_identically() {
    // Stretches of literal-heavy noise, long matches, and near-match data
    // (period-one-off repeats) — the cases where a SIMD comparator that
    // mis-located a mismatch byte would change the token stream.
    let mut state = 0xD15_BA7C4u64;
    let mut data = Vec::with_capacity(48_000);
    for _ in 0..8_000 {
        data.push(lcg(&mut state) as u8);
    }
    data.extend(std::iter::repeat_n(0xABu8, 9_000));
    for i in 0..16_000u32 {
        data.push((i % 251) as u8);
    }
    for i in 0..15_000u32 {
        // Period 97 with sparse corruption: long matches that end at
        // unpredictable offsets.
        let b = (i % 97) as u8;
        data.push(if i % 1013 == 0 { b ^ 0x55 } else { b });
    }

    let mut scratch = CodecScratch::new();
    let mut reference = Vec::new();
    lz77_compress_with_at(&mut scratch, SimdLevel::Scalar, &data, &mut reference);
    assert_eq!(lz77_decompress(&reference).unwrap(), data);
    for &level in &supported_levels()[1..] {
        let mut out = Vec::new();
        lz77_compress_with_at(&mut scratch, level, &data, &mut out);
        assert_eq!(out, reference, "{level:?}");
    }
}

#[test]
fn every_level_decodes_rans_symbol_streams_identically() {
    let mut state = 0xFEED_F00Du64;
    let inputs: Vec<Vec<u32>> = vec![
        Vec::new(),
        vec![0; 1],
        vec![42; 50_000],
        (0..40_000).map(|_| (lcg(&mut state) % 700) as u32).collect(),
        (0..30_001).map(|_| lcg(&mut state).trailing_zeros()).collect(),
    ];
    let mut scratch = RansScratch::new();
    for (case, symbols) in inputs.iter().enumerate() {
        let encoded = rans_encode(symbols);
        let mut reference = Vec::new();
        let consumed =
            rans_decode_with_at(&mut scratch, SimdLevel::Scalar, &encoded, &mut reference).unwrap();
        assert_eq!(&reference, symbols, "case {case}");
        assert_eq!(consumed, encoded.len(), "case {case}");
        for &level in &supported_levels()[1..] {
            let mut out = Vec::new();
            let c = rans_decode_with_at(&mut scratch, level, &encoded, &mut out).unwrap();
            assert_eq!(out, reference, "case {case} at {level:?}");
            assert_eq!(c, consumed, "case {case} at {level:?}");
        }
    }
}

#[test]
fn every_level_fails_identically_on_truncated_rans_streams() {
    let mut state = 0xBAD_C0DEu64;
    let symbols: Vec<u32> = (0..20_000).map(|_| (lcg(&mut state) % 300) as u32).collect();
    let encoded = rans_encode(&symbols);
    let mut scratch = RansScratch::new();
    for cut in [encoded.len() / 4, encoded.len() / 2, encoded.len() - 1] {
        let truncated = &encoded[..cut];
        let mut out = Vec::new();
        let reference = rans_decode_with_at(&mut scratch, SimdLevel::Scalar, truncated, &mut out)
            .map(|c| (c, std::mem::take(&mut out)));
        for &level in &supported_levels()[1..] {
            let mut out = Vec::new();
            let got = rans_decode_with_at(&mut scratch, level, truncated, &mut out)
                .map(|c| (c, std::mem::take(&mut out)));
            match (&reference, &got) {
                (Err(a), Err(b)) => {
                    assert_eq!(format!("{a}"), format!("{b}"), "cut {cut} at {level:?}")
                }
                (Ok(a), Ok(b)) => assert_eq!(a, b, "cut {cut} at {level:?}"),
                _ => panic!("cut {cut} at {level:?}: scalar {reference:?} vs {got:?}"),
            }
        }
    }
}

#[test]
fn every_level_decodes_rans8_symbol_streams_identically() {
    // The 8-way format exercises a different kernel per tier (scalar
    // round-robin, SSE4 8-chain, AVX2 gather + vector renorm); the decoded
    // symbols and consumed byte count must nonetheless be bit-identical.
    let mut state = 0xFEED_F00Du64;
    let inputs: Vec<Vec<u32>> = vec![
        Vec::new(),
        vec![0; 1],
        vec![7; 9], // one ragged round: lanes 0..1 hold 2 symbols, lanes 2..7 one
        vec![42; 50_000],
        (0..40_000).map(|_| (lcg(&mut state) % 700) as u32).collect(),
        (0..30_001).map(|_| lcg(&mut state).trailing_zeros()).collect(),
    ];
    let mut scratch = RansScratch::new();
    for (case, symbols) in inputs.iter().enumerate() {
        let encoded = rans8_encode(symbols);
        let mut reference = Vec::new();
        let consumed =
            rans8_decode_with_at(&mut scratch, SimdLevel::Scalar, &encoded, &mut reference)
                .unwrap();
        assert_eq!(&reference, symbols, "case {case}");
        assert_eq!(consumed, encoded.len(), "case {case}");
        for &level in &supported_levels()[1..] {
            let mut out = Vec::new();
            let c = rans8_decode_with_at(&mut scratch, level, &encoded, &mut out).unwrap();
            assert_eq!(out, reference, "case {case} at {level:?}");
            assert_eq!(c, consumed, "case {case} at {level:?}");
        }
    }
}

#[test]
fn every_level_fails_identically_on_truncated_rans8_streams() {
    let mut state = 0xBAD_C0DEu64;
    let symbols: Vec<u32> = (0..20_000).map(|_| (lcg(&mut state) % 300) as u32).collect();
    let encoded = rans8_encode(&symbols);
    let mut scratch = RansScratch::new();
    for cut in [encoded.len() / 4, encoded.len() / 2, encoded.len() - 1] {
        let truncated = &encoded[..cut];
        let mut out = Vec::new();
        let reference = rans8_decode_with_at(&mut scratch, SimdLevel::Scalar, truncated, &mut out)
            .map(|c| (c, std::mem::take(&mut out)));
        for &level in &supported_levels()[1..] {
            let mut out = Vec::new();
            let got = rans8_decode_with_at(&mut scratch, level, truncated, &mut out)
                .map(|c| (c, std::mem::take(&mut out)));
            match (&reference, &got) {
                (Err(a), Err(b)) => {
                    assert_eq!(format!("{a}"), format!("{b}"), "cut {cut} at {level:?}")
                }
                (Ok(a), Ok(b)) => assert_eq!(a, b, "cut {cut} at {level:?}"),
                _ => panic!("cut {cut} at {level:?}: scalar {reference:?} vs {got:?}"),
            }
        }
    }
}

#[test]
fn every_level_decodes_rans8_byte_streams_identically() {
    let mut state = 0x5EED_1234u64;
    let data: Vec<u8> = (0..60_000).map(|_| (lcg(&mut state) % 41) as u8).collect();
    let mut scratch = RansScratch::new();
    let mut encoded = Vec::new();
    rans8_encode_bytes_with(&mut scratch, &data, &mut encoded);
    let mut reference = Vec::new();
    rans8_decode_bytes_with_at(&mut scratch, SimdLevel::Scalar, &encoded, &mut reference).unwrap();
    assert_eq!(reference, data);
    for &level in &supported_levels()[1..] {
        let mut out = Vec::new();
        rans8_decode_bytes_with_at(&mut scratch, level, &encoded, &mut out).unwrap();
        assert_eq!(out, reference, "{level:?}");
    }
}

#[test]
fn every_level_decodes_rans_byte_streams_identically() {
    let mut state = 0x5EED_1234u64;
    let data: Vec<u8> = (0..60_000).map(|_| (lcg(&mut state) % 41) as u8).collect();
    let mut scratch = RansScratch::new();
    let mut encoded = Vec::new();
    rans_encode_bytes_with(&mut scratch, &data, &mut encoded);
    let mut reference = Vec::new();
    rans_decode_bytes_with_at(&mut scratch, SimdLevel::Scalar, &encoded, &mut reference).unwrap();
    assert_eq!(reference, data);
    for &level in &supported_levels()[1..] {
        let mut out = Vec::new();
        rans_decode_bytes_with_at(&mut scratch, level, &encoded, &mut out).unwrap();
        assert_eq!(out, reference, "{level:?}");
    }
}

#[test]
fn every_level_hashes_identically() {
    let mut state = 0xABCD_EF01u64;
    for n in [0usize, 1, 31, 32, 33, 4_096, 100_003] {
        let data: Vec<u8> = (0..n).map(|_| lcg(&mut state) as u8).collect();
        let reference = xxh64_at(SimdLevel::Scalar, &data, 0);
        for &level in &supported_levels()[1..] {
            assert_eq!(xxh64_at(level, &data, 0), reference, "n={n} at {level:?}");
        }
    }
}
