//! # lcc — Lossy Compressibility from Correlation Structure
//!
//! Facade crate for the reproduction of *"Exploring Lossy Compressibility
//! through Statistical Correlations of Scientific Datasets"* (SC 2021).
//! It re-exports every sub-crate of the workspace so downstream users can
//! depend on a single crate:
//!
//! ```
//! use lcc::synth::{GaussianFieldConfig, generate_single_range};
//! use lcc::geostat::variogram::estimate_range;
//! use lcc::sz::SzCompressor;
//! use lcc::pressio::{Compressor, ErrorBound};
//!
//! // Generate a small correlated Gaussian field ...
//! let field = generate_single_range(&GaussianFieldConfig::new(64, 64, 8.0, 42));
//! // ... estimate its variogram range ...
//! let range = estimate_range(&field).range;
//! // ... and compress it with an absolute error bound.
//! let sz = SzCompressor::default();
//! let result = sz.compress(&field, ErrorBound::Absolute(1e-3)).unwrap();
//! assert!(range > 0.0);
//! assert!(result.metrics.compression_ratio > 1.0);
//! ```
//!
//! The layering (bottom-up) is:
//!
//! | layer | crates |
//! |---|---|
//! | containers & kernels | [`grid`], [`par`], [`fft`], [`linalg`], [`lossless`] |
//! | compressors | [`pressio`] (traits/metrics), [`sz`], [`zfp`], [`mgard`] |
//! | data | [`synth`] (Gaussian random fields), [`hydro`] (Miranda-like solver) |
//! | statistics | [`geostat`] (variograms, local SVD, regressions) |
//! | study | [`core`] (experiment pipelines regenerating every figure) |

pub use lcc_archive as archive;
pub use lcc_core as core;
pub use lcc_fault as fault;
pub use lcc_fft as fft;
pub use lcc_geostat as geostat;
pub use lcc_grid as grid;
pub use lcc_hydro as hydro;
pub use lcc_linalg as linalg;
pub use lcc_lossless as lossless;
pub use lcc_mgard as mgard;
pub use lcc_par as par;
pub use lcc_pressio as pressio;
pub use lcc_synth as synth;
pub use lcc_sz as sz;
pub use lcc_zfp as zfp;
