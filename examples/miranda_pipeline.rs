//! Application-dataset pipeline: run the Miranda-substitute hydrodynamics
//! simulation, slice the velocityx volume like the paper does, and report
//! per-slice correlation statistics next to per-slice compression ratios.
//!
//! ```text
//! cargo run --release --example miranda_pipeline
//! ```

use lcc::core::default_registry;
use lcc::core::statistics::{CorrelationStatistics, StatisticsConfig};
use lcc::hydro::{MirandaProxy, MirandaProxyConfig, Problem};
use lcc::pressio::ErrorBound;

fn main() {
    // 1. Simulate a Kelvin–Helmholtz mixing layer and stack velocityx
    //    snapshots into a small 3D volume (slices along axis 0).
    let config = MirandaProxyConfig {
        ny: 128,
        nx: 128,
        n_slices: 6,
        steps_between_snapshots: 60,
        problem: Problem::KelvinHelmholtz,
        seed: 2021,
    };
    println!(
        "running the {} problem on a {}x{} grid, {} snapshots...",
        config.problem.name(),
        config.ny,
        config.nx,
        config.n_slices
    );
    let volume = MirandaProxy::new(config).generate_velocityx();
    println!("velocityx volume shape: {:?}\n", volume.shape());

    // 2. Analyse equally spaced 2D slices exactly like the paper.
    let registry = default_registry();
    let bound = ErrorBound::Absolute(1e-3);
    println!(
        "{:>6} {:>14} {:>14} {:>12} {:>10} {:>10} {:>10}",
        "slice", "global_range", "loc_range_std", "loc_svd_std", "cr_sz", "cr_zfp", "cr_mgard"
    );
    for (k, slice) in volume.equally_spaced_slices(volume.n0()) {
        let stats = CorrelationStatistics::compute(&slice, &StatisticsConfig::default());
        let mut ratios = Vec::new();
        for name in ["sz", "zfp", "mgard"] {
            let compressor = registry.get(name).expect("registered");
            let r = compressor.compress(&slice, bound).expect("compression succeeds");
            assert!(r.metrics.max_abs_error <= 1e-3);
            ratios.push(r.metrics.compression_ratio);
        }
        println!(
            "{:>6} {:>14.2} {:>14.2} {:>12.2} {:>10.2} {:>10.2} {:>10.2}",
            k,
            stats.global_range,
            stats.local_range_std,
            stats.local_svd_std,
            ratios[0],
            ratios[1],
            ratios[2]
        );
    }
    println!("\nsmoother early slices compress better; developed turbulence lowers the ratios,");
    println!("mirroring the spread of points in Figures 4 and 7 of the paper.");
}
