//! Adaptive compressor selection — the study's end goal as a working tool:
//! train compression-ratio predictors on a sweep of synthetic fields, then
//! for new, unseen fields pick the compressor the model predicts to win and
//! compare against the measured winner.
//!
//! ```text
//! cargo run --release --example adaptive_selection
//! ```

use lcc::core::dataset::StudyDatasets;
use lcc::core::experiment::{run_sweep, SweepConfig};
use lcc::core::registry::sz_zfp_registry;
use lcc::core::statistics::{CorrelationStatistics, StatisticKind, StatisticsConfig};
use lcc::core::CompressionRatioPredictor;
use lcc::pressio::ErrorBound;
use lcc::synth::{generate_single_range, GaussianFieldConfig};

fn main() {
    // 1. Train on a sweep of single-range fields.
    let datasets = StudyDatasets {
        gaussian_size: 128,
        n_ranges: 6,
        min_range: 2.0,
        max_range: 32.0,
        replicates: 1,
        seed: 100,
    };
    let registry = sz_zfp_registry();
    let config = SweepConfig {
        bounds: vec![ErrorBound::Absolute(1e-3), ErrorBound::Absolute(1e-2)],
        ..Default::default()
    };
    let records = run_sweep(&datasets.single_range_fields(), &registry, &config).expect("sweep");
    let predictor = CompressionRatioPredictor::train(&records, StatisticKind::GlobalVariogramRange)
        .expect("predictor training");
    println!(
        "trained {} (compressor, bound) models from {} records\n",
        predictor.model_count(),
        records.len()
    );

    // 2. Evaluate on unseen fields.
    let bound = ErrorBound::Absolute(1e-2);
    let mut correct = 0usize;
    let mut total = 0usize;
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "range", "pred_sz", "pred_zfp", "choice", "meas_sz", "meas_zfp"
    );
    for (k, range) in [2.5, 5.0, 9.0, 14.0, 22.0, 30.0].iter().enumerate() {
        let field =
            generate_single_range(&GaussianFieldConfig::new(128, 128, *range, 777 + k as u64));
        let stats = CorrelationStatistics::compute(&field, &StatisticsConfig::default());
        let pred_sz = predictor.predict(&stats, "sz", bound).unwrap_or(f64::NAN);
        let pred_zfp = predictor.predict(&stats, "zfp", bound).unwrap_or(f64::NAN);
        let choice = predictor.select_compressor(&stats, bound, &["sz", "zfp"]).expect("choice");

        let sz =
            registry.get("sz").unwrap().compress(&field, bound).unwrap().metrics.compression_ratio;
        let zfp =
            registry.get("zfp").unwrap().compress(&field, bound).unwrap().metrics.compression_ratio;
        let actual_best = if sz >= zfp { "sz" } else { "zfp" };
        total += 1;
        if actual_best == choice.compressor {
            correct += 1;
        }
        println!(
            "{:>6.1} {:>12.2} {:>12.2} {:>12} {:>10.2} {:>10.2}",
            range, pred_sz, pred_zfp, choice.compressor, sz, zfp
        );
    }
    println!(
        "\nmodel-driven selection matched the measured winner on {correct}/{total} unseen fields"
    );
}
