//! Will my simulation output compress well? — the paper's core question on a
//! small sweep: generate fields across a span of correlation ranges,
//! compress them at several bounds, and fit the logarithmic model
//! `CR = α + β·log(range)` per compressor and bound.
//!
//! ```text
//! cargo run --release --example correlation_vs_compression
//! ```

use lcc::core::dataset::StudyDatasets;
use lcc::core::experiment::{fit_series, run_sweep, SweepConfig};
use lcc::core::registry::default_registry;
use lcc::core::statistics::StatisticKind;
use lcc::pressio::ErrorBound;

fn main() {
    // A reduced version of the Figure 3 workload: 6 ranges, 160x160 fields.
    let datasets = StudyDatasets {
        gaussian_size: 160,
        n_ranges: 6,
        min_range: 2.0,
        max_range: 32.0,
        replicates: 1,
        seed: 7,
    };
    let fields = datasets.single_range_fields();
    println!("generated {} single-range Gaussian fields ({}x{})", fields.len(), 160, 160);

    let registry = default_registry();
    let config = SweepConfig {
        bounds: vec![
            ErrorBound::Absolute(1e-4),
            ErrorBound::Absolute(1e-3),
            ErrorBound::Absolute(1e-2),
        ],
        ..Default::default()
    };
    let records = run_sweep(&fields, &registry, &config).expect("sweep succeeds");
    println!("ran {} (field x compressor x bound) compression cells\n", records.len());

    println!("logarithmic regressions CR = alpha + beta * ln(estimated variogram range):");
    println!("{:<8} {:>10} {:>10} {:>10} {:>8}", "codec", "bound", "alpha", "beta", "R2");
    for series in fit_series(&records, StatisticKind::GlobalVariogramRange) {
        println!(
            "{:<8} {:>10} {:>10.2} {:>10.2} {:>8.3}",
            series.compressor,
            series.bound.to_string(),
            series.fit.alpha,
            series.fit.beta,
            series.fit.r_squared
        );
    }
    println!("\npositive beta = the compressor exploits spatial correlation;");
    println!("MGARD's beta is typically the smallest, matching the paper's observation.");
}
