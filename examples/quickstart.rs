//! Quickstart: generate a correlated field, measure its correlation
//! statistics, and compress it with the three study compressors at one
//! absolute error bound.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use lcc::core::default_registry;
use lcc::core::statistics::{CorrelationStatistics, StatisticsConfig};
use lcc::pressio::ErrorBound;
use lcc::synth::{generate_single_range, GaussianFieldConfig};

fn main() {
    // 1. A 256x256 Gaussian random field with a known correlation range.
    let range = 16.0;
    let field = generate_single_range(&GaussianFieldConfig::new(256, 256, range, 42));
    println!("generated a {}x{} field with correlation range {range}", field.ny(), field.nx());

    // 2. The paper's correlation statistics.
    let stats = CorrelationStatistics::compute(&field, &StatisticsConfig::default());
    println!("estimated global variogram range  : {:.2}", stats.global_range);
    println!("std of local variogram ranges H=32: {:.2}", stats.local_range_std);
    println!("std of local SVD truncation  H=32 : {:.2}", stats.local_svd_std);

    // 3. Compress with SZ-, ZFP- and MGARD-style compressors at abs eb 1e-3.
    let bound = ErrorBound::Absolute(1e-3);
    println!(
        "\n{:<8} {:>10} {:>12} {:>12} {:>10}",
        "codec", "ratio", "bitrate", "max_error", "psnr_db"
    );
    for compressor in default_registry().compressors() {
        let result = compressor.compress(&field, bound).expect("compression succeeds");
        println!(
            "{:<8} {:>10.2} {:>12.3} {:>12.3e} {:>10.1}",
            compressor.name(),
            result.metrics.compression_ratio,
            result.metrics.bitrate,
            result.metrics.max_abs_error,
            result.metrics.psnr
        );
        assert!(result.metrics.max_abs_error <= 1e-3);
    }
    println!("\nevery reconstruction respected the absolute error bound of 1e-3");
}
