#!/usr/bin/env python3
"""Render perf tables from BENCH_*.json reports and gate CI on regressions.

Usage:
  bench_table.py [--gate PCT] BASELINE.json CURRENT.json
      Render GitHub-flavoured markdown comparing the two reports (both must
      be the same kind: "sweep" or "load"). With --gate, additionally print
      a PASS/FAIL row per gated metric and exit non-zero if any metric
      regressed by more than PCT percent against the baseline.

  bench_table.py --check-only FILE [FILE ...]
      Validate that each file parses and matches a known report schema.
      A malformed or truncated artifact fails with a one-line message
      (never a stack trace), so CI steps surface the real problem.

  bench_table.py --self-test
      Run the built-in checks: the gate must fail on a synthetic regressed
      input (sweep and load), pass on a non-regressed one, and malformed
      JSON must produce a clean error. Exits 0 when all checks hold.

Sweep reports (BENCH_sweep.json, emitted by bench_sweep) carry per-codec
throughput and stage wall times; committed baseline:
benchmarks/BASELINE_sweep.json. Load reports (BENCH_load.json, emitted by
loadgen) carry per-variant p50/p99 round-trip latency and MB/s per core;
committed baseline: benchmarks/BASELINE_load.json. The gate compares
compress/decompress MB/s (sweep) and MB/s-per-core (load); latency columns
are rendered but not gated (too noisy on shared runners).

The renderer FAILS (non-zero exit) when the current report is missing any
registry variant it is supposed to measure — a silently skipped compressor
must break the bench-smoke job, not vanish from the summary.
"""

import argparse
import json
import sys

# Every compressor bench_sweep's ablation registry must have measured, in
# both single-stream and framed form. Keep in sync with
# lcc_core::registry::entropy_ablation_registry().
REQUIRED_VARIANTS = ["mgard", "mgard-rans", "mgard-rans8", "sz", "sz-rans",
                     "sz-rans8", "zfp", "zfp-rans", "zfp-rans8"]
# Archive region-read rows bench_sweep's `regions` stage must have
# measured: a full-entry decode baseline, a cold (cache-less) tiled window
# read, and a warmed decoded-tile-cache read. Keep in sync with
# bench_sweep's Stage 2c.
REQUIRED_REGION_ROWS = ["region_full_decode", "region_read_cold",
                        "region_read_hot"]
# The load generator measures the same registry: every codec single-stream,
# framed, and framed+checksummed (lcc_core::registry::framed_variant_name /
# checksummed_variant_name) — the +framed+ck rows are where the XXH64
# verify cost must stay visible — plus the archive region-read variants
# (lcc_core::registry::region_variant_name over the rans8 tier).
REQUIRED_LOAD_VARIANTS = (REQUIRED_VARIANTS
                          + [f"{n}+framed" for n in REQUIRED_VARIANTS]
                          + [f"{n}+framed+ck" for n in REQUIRED_VARIANTS]
                          + [f"region_{n}-rans8" for n in
                             ["sz", "zfp", "mgard"]])
# Every hot kernel bench_sweep's SIMD pass must have measured scalar vs
# dispatched. Keep in sync with bench_sweep's Stage 2c.
REQUIRED_KERNELS = ["rans_decode", "rans8_decode", "lorenzo_quant",
                    "zfp_transform", "zfp_transform_batch", "lz77_match"]

# Default regression threshold, percent. Generous on purpose: shared CI
# runners jitter by tens of percent, and the gate exists to catch real
# regressions (an accidentally quadratic loop, a lost fast path), not noise.
DEFAULT_GATE_PCT = 25.0


class TableError(Exception):
    """A user-facing failure: printed as one line, never a traceback."""


def load(path):
    """Parse a report file, raising TableError with a clear message."""
    try:
        with open(path) as fh:
            data = json.load(fh)
    except OSError as e:
        raise TableError(f"cannot read {path}: {e}") from e
    except json.JSONDecodeError as e:
        raise TableError(f"{path} is not valid JSON: {e}") from e
    if not isinstance(data, dict):
        raise TableError(f"{path}: expected a JSON object at top level")
    validate(data, path)
    return data


def kind(report):
    return report.get("bench", "sweep")


def validate(report, path):
    """Schema check shared by --check-only and normal rendering."""
    k = kind(report)
    if k == "sweep":
        rows = report.get("throughput")
        if not isinstance(rows, list):
            raise TableError(f"{path}: sweep report has no 'throughput' array")
        for row in rows:
            for key in ("compressor", "compress_mb_per_s", "decompress_mb_per_s"):
                if key not in row:
                    raise TableError(
                        f"{path}: throughput row {row.get('compressor', '?')!r} "
                        f"is missing '{key}'")
        if not isinstance(report.get("stages", []), list):
            raise TableError(f"{path}: 'stages' is not an array")
        kernels = report.get("kernels", [])
        if not isinstance(kernels, list):
            raise TableError(f"{path}: 'kernels' is not an array")
        for row in kernels:
            for key in ("kernel", "scalar_mb_per_s", "simd_mb_per_s"):
                if key not in row:
                    raise TableError(
                        f"{path}: kernel row {row.get('kernel', '?')!r} "
                        f"is missing '{key}'")
    elif k == "load":
        rows = report.get("variants")
        if not isinstance(rows, list):
            raise TableError(f"{path}: load report has no 'variants' array")
        for row in rows:
            for key in ("variant", "requests", "errors", "mb_per_s_per_core",
                        "p50_us", "p99_us"):
                if key not in row:
                    raise TableError(
                        f"{path}: variant row {row.get('variant', '?')!r} "
                        f"is missing '{key}'")
        validate_chaos(report.get("chaos"), path)
    else:
        raise TableError(f"{path}: unknown report kind {k!r}")


def validate_chaos(chaos, path):
    """Check the fault-injection block of a load report. `None` (chaos off,
    or a report predating the injector) is fine; when present, every counter
    must exist and the accounting invariant must hold — a chaos run whose
    injected faults are not all detected-or-recovered is a FAILED run even
    if the loadgen binary forgot to say so."""
    if chaos is None:
        return
    if not isinstance(chaos, dict):
        raise TableError(f"{path}: 'chaos' is neither null nor an object")
    for key in ("enabled", "seed", "rate", "injected", "detected",
                "recovered", "timeouts", "panics_injected", "panics_absorbed",
                "unexplained_errors"):
        if key not in chaos:
            raise TableError(f"{path}: chaos block is missing '{key}'")
    if chaos["injected"] != chaos["detected"] + chaos["recovered"]:
        raise TableError(
            f"{path}: chaos accounting broken — {chaos['injected']} injected "
            f"!= {chaos['detected']} detected + {chaos['recovered']} "
            f"recovered")
    if chaos["panics_absorbed"] != chaos["panics_injected"]:
        raise TableError(
            f"{path}: chaos panic accounting broken — "
            f"{chaos['panics_injected']} injected worker panic(s) but "
            f"{chaos['panics_absorbed']} absorbed")
    if chaos["unexplained_errors"]:
        raise TableError(
            f"{path}: {chaos['unexplained_errors']} request(s) failed with "
            f"no fault injected into them")


def check_required(report, path, required, key, rows_key):
    present = {t[key] for t in report.get(rows_key, [])}
    missing = [name for name in required if name not in present]
    if missing:
        raise TableError(f"{path}: report is missing registry variants: "
                         f"{', '.join(missing)}")


def ratio(before, after):
    if before and after:
        return f"{after / before:.2f}x"
    return "n/a"


def simd_note(baseline, current):
    """One-line dispatch-tier note for either report kind: which SIMD level
    each artifact ran at (empty / missing means the producer predates the
    field)."""
    b = baseline.get("simd_level") or "unrecorded"
    c = current.get("simd_level") or "unrecorded"
    return f"SIMD dispatch level: baseline {b}, current {c}."


def fmt(v):
    return f"{v:.1f}" if v is not None else "—"


def render_sweep(baseline, current):
    print(f"## Codec throughput — {current.get('label', '?')} (MB/s)")
    print()
    print(simd_note(baseline, current))
    print()
    print("| compressor | compress before | compress after | ratio | "
          "decompress before | decompress after | ratio |")
    print("|---|---|---|---|---|---|---|")
    base_tp = {t["compressor"]: t for t in baseline.get("throughput", [])}
    for t in current.get("throughput", []):
        b = base_tp.get(t["compressor"], {})
        if not b and t["compressor"].endswith("+framed"):
            # `+framed` rows without a baseline counterpart (pre-framing
            # baseline) are pure noise here; the framed section below
            # renders them against the current single-stream numbers.
            # Anything else missing from the baseline still shows with a
            # "—" before column so new compressors stay visible.
            continue
        bc, ac = b.get("compress_mb_per_s"), t["compress_mb_per_s"]
        bd, ad = b.get("decompress_mb_per_s"), t["decompress_mb_per_s"]
        print(f"| {t['compressor']} | {fmt(bc)} | {fmt(ac)} | {ratio(bc, ac)} "
              f"| {fmt(bd)} | {fmt(ad)} | {ratio(bd, ad)} |")
    print()

    # Entropy-backend ablation: each study codec against its 2-way and
    # 8-way rANS-backend variants, read from the *current* run — ratio and
    # decode throughput side by side, the tradeoff the backend axis exists
    # to measure (the speedup columns are relative to the Huffman backend).
    cur_tp = {t["compressor"]: t for t in current.get("throughput", [])}
    triples = [(name, cur_tp.get(name), cur_tp.get(f"{name}-rans"),
                cur_tp.get(f"{name}-rans8"))
               for name in ["sz", "zfp", "mgard"]]
    triples = [(n, h, r, r8) for n, h, r, r8 in triples if h and r and r8]
    if triples:
        print("## Entropy backend ablation — Huffman vs rANS-2 vs rANS-8, "
              "current run")
        print()
        print("| codec | ratio huffman | ratio rans | ratio rans8 | "
              "decompress huffman | decompress rans | speedup | "
              "decompress rans8 | speedup |")
        print("|---|---|---|---|---|---|---|---|---|")
        for name, h, r, r8 in triples:
            hd, rd = h["decompress_mb_per_s"], r["decompress_mb_per_s"]
            r8d = r8["decompress_mb_per_s"]
            hr = h.get("compression_ratio")
            rr = r.get("compression_ratio")
            r8r = r8.get("compression_ratio")
            print(f"| {name} | {fmt(hr)} | {fmt(rr)} | {fmt(r8r)} "
                  f"| {fmt(hd)} | {fmt(rd)} | {ratio(hd, rd)} "
                  f"| {fmt(r8d)} | {ratio(hd, r8d)} |")
        print()

    # Block-parallel framed codec: `<name>+framed` entries measure the same
    # single-field work through the multi-block container, so the speedup
    # column here is the block-parallel scaling of the *current* run (the
    # before/after table above tracks the trajectory across PRs).
    framed = [(name, t) for name, t in cur_tp.items()
              if name.endswith("+framed")]
    if framed:
        print("## Block-parallel framed codec — current run (MB/s)")
        print()
        print("| compressor | compress single | compress framed | speedup | "
              "decompress single | decompress framed | speedup |")
        print("|---|---|---|---|---|---|---|")
        for name, t in sorted(framed):
            single = cur_tp.get(name.removesuffix("+framed"), {})
            sc, fc = single.get("compress_mb_per_s"), t["compress_mb_per_s"]
            sd, fd = single.get("decompress_mb_per_s"), t["decompress_mb_per_s"]
            print(f"| {name.removesuffix('+framed')} | {fmt(sc)} | {fmt(fc)} "
                  f"| {ratio(sc, fc)} | {fmt(sd)} | {fmt(fd)} "
                  f"| {ratio(sd, fd)} |")
        print()

    # Archive region reads: per-read latency of the tiled random-access
    # path, from the *current* run — the cold column's speedup over the
    # full-entry decode is what the seek index buys, the hot column's
    # speedup over cold is what the decoded-tile cache buys.
    region = {name: cur_tp.get(name) for name in REQUIRED_REGION_ROWS}
    if all(region.values()):
        full_s = region["region_full_decode"].get("decompress_seconds")
        cold_s = region["region_read_cold"].get("decompress_seconds")
        hot_s = region["region_read_hot"].get("decompress_seconds")
        print("## Archive region reads — current run")
        print()
        print("| row | per-read ms | MB/s | vs full decode | vs cold |")
        print("|---|---|---|---|---|")
        for name in REQUIRED_REGION_ROWS:
            t = region[name]
            s = t.get("decompress_seconds")
            ms = f"{s * 1e3:.3f}" if s else "—"
            vs_full = (f"{full_s / s:.1f}x"
                       if s and full_s and name != "region_full_decode"
                       else "—")
            vs_cold = (f"{cold_s / s:.1f}x"
                       if s and cold_s and name == "region_read_hot"
                       else "—")
            print(f"| {name} | {ms} | {fmt(t['decompress_mb_per_s'])} "
                  f"| {vs_full} | {vs_cold} |")
        print()

    # SIMD kernel pass: scalar vs dispatched throughput per hot kernel, from
    # the *current* run (the speedup column is the whole point of the SIMD
    # tier), plus the dispatched number's trajectory against the baseline.
    kernels = current.get("kernels", [])
    if kernels:
        base_kernels = {k["kernel"]: k for k in baseline.get("kernels", [])}
        print("## SIMD kernel pass — scalar vs dispatched, current run (MB/s)")
        print()
        print("| kernel | scalar | dispatched | speedup | "
              "dispatched before | ratio |")
        print("|---|---|---|---|---|---|")
        for k in kernels:
            b = base_kernels.get(k["kernel"], {})
            bs = b.get("simd_mb_per_s")
            print(f"| {k['kernel']} | {fmt(k['scalar_mb_per_s'])} "
                  f"| {fmt(k['simd_mb_per_s'])} | {k.get('speedup', 0):.2f}x "
                  f"| {fmt(bs)} | {ratio(bs, k['simd_mb_per_s'])} |")
        print()

    print("## Stage wall times (s)")
    print()
    print("| stage | before | after | speedup |")
    print("|---|---|---|---|")
    base_stages = {s["stage"]: s["seconds"]
                   for s in baseline.get("stages", [])}
    for s in current.get("stages", []):
        b = base_stages.get(s["stage"])
        before = f"{b:.3f}" if b is not None else "—"
        speedup = f"{b / s['seconds']:.2f}x" if b and s["seconds"] else "n/a"
        print(f"| {s['stage']} | {before} | {s['seconds']:.3f} | {speedup} |")
    print()
    print(f"Totals: {baseline.get('total_seconds', 0):.3f}s → "
          f"{current.get('total_seconds', 0):.3f}s "
          f"(baseline: committed benchmarks/BASELINE_sweep.json)")


def render_load(baseline, current):
    print(f"## Sustained load — {current.get('label', '?')}")
    print()
    print(simd_note(baseline, current))
    print()
    print(f"{current.get('workers', '?')} workers, "
          f"{current.get('total_requests', 0)} requests, "
          f"{current.get('total_errors', 0)} errors, "
          f"{current.get('mb_per_s', 0):.1f} MB/s aggregate "
          f"({current.get('mb_per_s_per_core', 0):.1f} MB/s per core); "
          f"baseline {baseline.get('mb_per_s_per_core', 0):.1f} MB/s per "
          f"core. Steady-state allocations per request: "
          f"{current.get('allocs_per_request', 'not tracked')}.")
    print()
    print("| variant | requests | errors | p50 us | p99 us | max us | "
          "MB/s/core before | MB/s/core after | ratio |")
    print("|---|---|---|---|---|---|---|---|---|")
    base_rows = {v["variant"]: v for v in baseline.get("variants", [])}
    for v in current.get("variants", []):
        b = base_rows.get(v["variant"], {})
        bm, am = b.get("mb_per_s_per_core"), v["mb_per_s_per_core"]
        print(f"| {v['variant']} | {v['requests']} | {v['errors']} "
              f"| {fmt(v['p50_us'])} | {fmt(v['p99_us'])} "
              f"| {fmt(v.get('max_us'))} "
              f"| {fmt(bm)} | {fmt(am)} | {ratio(bm, am)} |")
    print()

    # Decoded-tile cache: hit rate and the fully-cached vs decoding split
    # of region-read throughput — the columns that justify (or indict) the
    # cache's byte budget. Older reports carry no `tile_cache` object.
    cache = current.get("tile_cache")
    if cache:
        base_cache = baseline.get("tile_cache") or {}
        hit_pct = cache.get("hit_rate", 0.0) * 100.0
        base_hit = base_cache.get("hit_rate")
        base_note = (f" (baseline {base_hit * 100.0:.1f}%)"
                     if base_hit is not None else "")
        print("## Decoded-tile cache — region reads, current run")
        print()
        print(f"Hit rate {hit_pct:.1f}%{base_note}: "
              f"{cache.get('hits', 0)} hits, {cache.get('misses', 0)} misses, "
              f"{cache.get('evictions', 0)} evictions; "
              f"{cache.get('bytes', 0)} of {cache.get('budget_bytes', 0)} "
              f"budget bytes resident.")
        print()
        print("| read class | MB served | busy s | MB/s |")
        print("|---|---|---|---|")
        print(f"| all-hits | {cache.get('hit_megabytes', 0.0):.2f} "
              f"| {cache.get('hit_busy_seconds', 0.0):.4f} "
              f"| {fmt(cache.get('hit_mb_per_s', 0.0))} |")
        print(f"| decoding | {cache.get('miss_megabytes', 0.0):.2f} "
              f"| {cache.get('miss_busy_seconds', 0.0):.4f} "
              f"| {fmt(cache.get('miss_mb_per_s', 0.0))} |")
        print()

    # Fault injection: present only when the run was driven with --chaos.
    # Validation already enforced the accounting invariant, so this section
    # is pure reporting — how much abuse the run absorbed and where it went.
    chaos = current.get("chaos")
    if chaos:
        print("## Injected faults & recovery — chaos run "
              f"(rate {chaos.get('rate', 0.0):.4f}, "
              f"seed {chaos.get('seed', '?')})")
        print()
        print("| counter | value |")
        print("|---|---|")
        print(f"| faults injected | {chaos.get('injected', 0)} |")
        print(f"| detected (request errored) | {chaos.get('detected', 0)} |")
        print(f"| recovered (request served clean) "
              f"| {chaos.get('recovered', 0)} |")
        print(f"| deadline timeouts | {chaos.get('timeouts', 0)} |")
        print(f"| worker panics injected "
              f"| {chaos.get('panics_injected', 0)} |")
        print(f"| worker panics absorbed per-job "
              f"| {chaos.get('panics_absorbed', 0)} |")
        print(f"| unexplained errors | {chaos.get('unexplained_errors', 0)} |")
        print()
        print("Invariant held: injected == detected + recovered, every "
              "injected panic absorbed, zero unexplained errors.")
        print()


def gate_rows(baseline, current):
    """Yield (label, metric, before, after) tuples the gate compares."""
    if kind(current) == "load":
        base_rows = {v["variant"]: v for v in baseline.get("variants", [])}
        for v in current.get("variants", []):
            b = base_rows.get(v["variant"])
            if b is None:
                continue  # new variant: no baseline to regress against
            yield (v["variant"], "mb_per_s_per_core",
                   b.get("mb_per_s_per_core"), v["mb_per_s_per_core"])
    else:
        base_rows = {t["compressor"]: t for t in baseline.get("throughput", [])}
        for t in current.get("throughput", []):
            b = base_rows.get(t["compressor"])
            if b is None:
                continue
            for metric in ("compress_mb_per_s", "decompress_mb_per_s"):
                yield (t["compressor"], metric, b.get(metric), t[metric])
        # Per-kernel dispatched throughput is gated like codec throughput:
        # losing a SIMD fast path (or a detection regression that silently
        # drops the run to scalar) shows up here as a throughput cliff.
        base_kernels = {k["kernel"]: k for k in baseline.get("kernels", [])}
        for k in current.get("kernels", []):
            b = base_kernels.get(k["kernel"])
            if b is None:
                continue
            yield (k["kernel"], "simd_mb_per_s",
                   b.get("simd_mb_per_s"), k["simd_mb_per_s"])


def apply_gate(baseline, current, pct):
    """Print the PASS/FAIL gate table; return the number of breaches."""
    floor = 1.0 - pct / 100.0
    breaches = 0
    print(f"## Perf gate — fail below {pct:.0f}% of baseline")
    print()
    print("| row | metric | baseline | current | of baseline | verdict |")
    print("|---|---|---|---|---|---|")
    for label, metric, before, after in gate_rows(baseline, current):
        if not before or before <= 0.0:
            verdict, frac = "PASS (no baseline)", None
        elif after >= before * floor:
            verdict, frac = "PASS", after / before
        else:
            verdict, frac = "**FAIL**", after / before
            breaches += 1
        of_base = f"{frac * 100:.0f}%" if frac is not None else "n/a"
        print(f"| {label} | {metric} | {fmt(before)} | {fmt(after)} "
              f"| {of_base} | {verdict} |")
    print()
    if breaches:
        print(f"Gate: {breaches} metric(s) regressed more than {pct:.0f}% — "
              f"failing the job. If the regression is intended, regenerate "
              f"the committed baseline (see README 'Load harness & CI "
              f"gates').")
    else:
        print(f"Gate: all metrics within {pct:.0f}% of baseline.")
    return breaches


def compare(baseline_path, current_path, gate_pct):
    baseline, current = load(baseline_path), load(current_path)
    if kind(baseline) != kind(current):
        raise TableError(
            f"report kinds differ: {baseline_path} is '{kind(baseline)}', "
            f"{current_path} is '{kind(current)}'")
    if kind(current) == "load":
        check_required(current, current_path, REQUIRED_LOAD_VARIANTS,
                       "variant", "variants")
        render_load(baseline, current)
    else:
        check_required(
            current, current_path, REQUIRED_VARIANTS
            + [f"{n}+framed" for n in REQUIRED_VARIANTS]
            + REQUIRED_REGION_ROWS,
            "compressor", "throughput")
        check_required(current, current_path, REQUIRED_KERNELS,
                       "kernel", "kernels")
        render_sweep(baseline, current)
    if gate_pct is not None:
        print()
        if apply_gate(baseline, current, gate_pct):
            raise TableError("perf gate breached")


# ---------------------------------------------------------------------------
# Self-test: synthetic inputs that must make the gate fail (and pass).

def synth_sweep(scale, kernel_scale=None):
    throughput = []
    for name in REQUIRED_VARIANTS + [f"{n}+framed" for n in REQUIRED_VARIANTS]:
        throughput.append({
            "compressor": name,
            "compress_mb_per_s": 200.0 * scale,
            "decompress_mb_per_s": 600.0 * scale,
            "compression_ratio": 10.0,
        })
    for name in REQUIRED_REGION_ROWS:
        # Region rows are read paths: the compress side is structurally
        # zero, so only decompress throughput is gate-comparable.
        throughput.append({
            "compressor": name,
            "compress_mb_per_s": 0.0,
            "decompress_seconds": 0.001,
            "decompress_mb_per_s": 900.0 * scale,
            "compression_ratio": 10.0,
        })
    kernel_scale = scale if kernel_scale is None else kernel_scale
    kernels = [{
        "kernel": name,
        "megabytes": 8.0,
        "scalar_mb_per_s": 400.0,
        "simd_mb_per_s": 800.0 * kernel_scale,
        "speedup": 2.0 * kernel_scale,
    } for name in REQUIRED_KERNELS]
    return {"bench": "sweep", "label": "self-test", "simd_level": "avx2",
            "throughput": throughput, "kernels": kernels,
            "stages": [{"stage": "s", "seconds": 1.0}], "total_seconds": 1.0}


def synth_chaos(**overrides):
    """A chaos block whose accounting holds; overrides break it on demand."""
    chaos = {"enabled": True, "seed": 42, "rate": 0.02, "injected": 40,
             "detected": 29, "recovered": 11, "timeouts": 1,
             "panics_injected": 6, "panics_absorbed": 6,
             "unexplained_errors": 0}
    chaos.update(overrides)
    return chaos


def synth_load(scale, chaos=None):
    variants = []
    for name in REQUIRED_LOAD_VARIANTS:
        region = name.startswith("region_")
        variants.append({
            "variant": name, "requests": 100, "errors": 0,
            "megabytes": 3.2, "busy_seconds": 0.1,
            "mb_per_s_per_core": 32.0 * scale,
            "compression_ratio": 0.0 if region else 10.0,
            "tiles": 400 if region else 0,
            "tiles_from_cache": 300 if region else 0,
            "p50_us": 200.0, "p90_us": 300.0, "p99_us": 400.0,
            "max_us": 500.0,
        })
    return {"bench": "load", "label": "self-test", "workers": 4,
            "duration_seconds": 1.0, "total_requests": 1200,
            "total_errors": 0, "total_megabytes": 38.4, "mb_per_s": 38.4,
            "mb_per_s_per_core": 9.6, "allocs_per_request": None,
            "tile_cache": {"hits": 900, "misses": 300, "evictions": 0,
                           "entries": 300, "bytes": 9830400,
                           "budget_bytes": 8000000, "hit_rate": 0.75,
                           "hit_megabytes": 29.5, "hit_busy_seconds": 0.01,
                           "hit_mb_per_s": 2950.0, "miss_megabytes": 9.8,
                           "miss_busy_seconds": 0.04,
                           "miss_mb_per_s": 245.0},
            "chaos": chaos,
            "variants": variants}


def expect(condition, what):
    if not condition:
        raise TableError(f"self-test failed: {what}")


def run_gate_quietly(baseline, current, pct):
    """Run apply_gate with stdout suppressed; return the breach count."""
    import contextlib
    import io
    with contextlib.redirect_stdout(io.StringIO()):
        return apply_gate(baseline, current, pct)


def self_test():
    # A 50% regression must breach the default 25% gate, for both kinds.
    expect(run_gate_quietly(synth_sweep(1.0), synth_sweep(0.5),
                            DEFAULT_GATE_PCT) > 0,
           "gate passed a 50% sweep regression")
    expect(run_gate_quietly(synth_load(1.0), synth_load(0.5),
                            DEFAULT_GATE_PCT) > 0,
           "gate passed a 50% load regression")
    # A 10% dip rides inside the default 25% threshold.
    expect(run_gate_quietly(synth_sweep(1.0), synth_sweep(0.9),
                            DEFAULT_GATE_PCT) == 0,
           "gate failed a 10% sweep wobble")
    expect(run_gate_quietly(synth_load(1.0), synth_load(1.2),
                            DEFAULT_GATE_PCT) == 0,
           "gate failed an improvement")
    # A tighter threshold catches the 10% dip.
    expect(run_gate_quietly(synth_sweep(1.0), synth_sweep(0.9), 5.0) > 0,
           "5% gate passed a 10% regression")
    # A lost SIMD fast path (kernel rows halved, codec rows steady) breaches
    # the gate on the kernel rows alone.
    expect(run_gate_quietly(synth_sweep(1.0), synth_sweep(1.0, 0.5),
                            DEFAULT_GATE_PCT) > 0,
           "gate passed a kernel-only SIMD regression")
    # Missing kernel rows in a current sweep report are caught.
    no_kernels = synth_sweep(1.0)
    no_kernels["kernels"] = []
    try:
        check_required(no_kernels, "<synthetic>", REQUIRED_KERNELS,
                       "kernel", "kernels")
    except TableError:
        pass
    else:
        raise TableError("self-test failed: missing kernel rows accepted")
    # Malformed JSON surfaces as TableError, not a traceback.
    import tempfile
    with tempfile.NamedTemporaryFile("w", suffix=".json") as fh:
        fh.write('{"bench": "sweep", "throughput": [truncated')
        fh.flush()
        try:
            load(fh.name)
        except TableError:
            pass
        else:
            raise TableError("self-test failed: malformed JSON was accepted")
    # Schema violations are caught too.
    with tempfile.NamedTemporaryFile("w", suffix=".json") as fh:
        fh.write('{"bench": "load", "variants": [{"variant": "sz"}]}')
        fh.flush()
        try:
            load(fh.name)
        except TableError:
            pass
        else:
            raise TableError("self-test failed: schema violation accepted")
    # Missing registry variants are caught.
    crippled = synth_sweep(1.0)
    crippled["throughput"] = crippled["throughput"][:3]
    try:
        check_required(
            crippled, "<synthetic>", REQUIRED_VARIANTS, "compressor",
            "throughput")
    except TableError:
        pass
    else:
        raise TableError("self-test failed: missing variants accepted")
    # Dropping ONLY the rans8 sweep rows (a report from a binary that
    # predates the 8-way backend) must fail the variant check.
    no_rans8 = synth_sweep(1.0)
    no_rans8["throughput"] = [t for t in no_rans8["throughput"]
                              if "rans8" not in t["compressor"]]
    try:
        check_required(no_rans8, "<synthetic>", REQUIRED_VARIANTS,
                       "compressor", "throughput")
    except TableError:
        pass
    else:
        raise TableError("self-test failed: missing rans8 sweep rows accepted")
    # Dropping ONLY the rans8_decode kernel row must fail the kernel check.
    no_rans8_kernel = synth_sweep(1.0)
    no_rans8_kernel["kernels"] = [k for k in no_rans8_kernel["kernels"]
                                  if k["kernel"] != "rans8_decode"]
    try:
        check_required(no_rans8_kernel, "<synthetic>", REQUIRED_KERNELS,
                       "kernel", "kernels")
    except TableError:
        pass
    else:
        raise TableError("self-test failed: missing rans8_decode row accepted")
    # Dropping ONLY the checksummed-frame load rows must fail the load
    # variant check — the XXH64 verify cost cannot silently vanish.
    no_ck = synth_load(1.0)
    no_ck["variants"] = [v for v in no_ck["variants"]
                         if not v["variant"].endswith("+framed+ck")]
    try:
        check_required(no_ck, "<synthetic>", REQUIRED_LOAD_VARIANTS,
                       "variant", "variants")
    except TableError:
        pass
    else:
        raise TableError("self-test failed: missing +framed+ck rows accepted")
    # Dropping ONLY the region sweep rows (a bench_sweep binary that
    # predates the archive) must fail the sweep row check.
    no_region_sweep = synth_sweep(1.0)
    no_region_sweep["throughput"] = [
        t for t in no_region_sweep["throughput"]
        if not t["compressor"].startswith("region_")]
    try:
        check_required(no_region_sweep, "<synthetic>",
                       REQUIRED_VARIANTS + REQUIRED_REGION_ROWS,
                       "compressor", "throughput")
    except TableError:
        pass
    else:
        raise TableError("self-test failed: missing region sweep rows "
                         "accepted")
    # Dropping ONLY the region load rows must fail the load variant check —
    # region-read latency is a gated serving metric, not an optional extra.
    no_region_load = synth_load(1.0)
    no_region_load["variants"] = [
        v for v in no_region_load["variants"]
        if not v["variant"].startswith("region_")]
    try:
        check_required(no_region_load, "<synthetic>", REQUIRED_LOAD_VARIANTS,
                       "variant", "variants")
    except TableError:
        pass
    else:
        raise TableError("self-test failed: missing region load rows "
                         "accepted")
    # Chaos accounting: a coherent block passes validation, every way the
    # invariant can break must be rejected with a clean one-line error.
    validate_chaos(None, "<synthetic>")          # chaos off: fine
    validate_chaos(synth_chaos(), "<synthetic>")  # coherent block: fine
    for label, broken in [
        ("an unbalanced injected count", synth_chaos(injected=41)),
        ("a swallowed worker panic", synth_chaos(panics_absorbed=5)),
        ("an unexplained request failure", synth_chaos(unexplained_errors=2)),
        ("a chaos block missing its counters", {"enabled": True}),
    ]:
        try:
            validate_chaos(broken, "<synthetic>")
        except TableError:
            pass
        else:
            raise TableError(f"self-test failed: {label} was accepted")
    # The same enforcement must fire through the full load() path, so a
    # broken BENCH_load.json fails --check-only, not just direct calls.
    import tempfile
    with tempfile.NamedTemporaryFile("w", suffix=".json") as fh:
        json.dump(synth_load(1.0, chaos=synth_chaos(recovered=0)), fh)
        fh.flush()
        try:
            load(fh.name)
        except TableError:
            pass
        else:
            raise TableError("self-test failed: load() accepted a report "
                             "with broken chaos accounting")
    # And a chaos run whose books balance renders (and gates) like any
    # other load report.
    expect(run_gate_quietly(synth_load(1.0),
                            synth_load(1.0, chaos=synth_chaos()),
                            DEFAULT_GATE_PCT) == 0,
           "gate failed a clean chaos run")
    # A halved region-read decompress rate must breach the gate even though
    # the region rows' compress side is structurally zero.
    slow_regions = synth_sweep(1.0)
    for t in slow_regions["throughput"]:
        if t["compressor"].startswith("region_"):
            t["decompress_mb_per_s"] *= 0.5
    expect(run_gate_quietly(synth_sweep(1.0), slow_regions,
                            DEFAULT_GATE_PCT) > 0,
           "gate passed a region-read-only regression")
    print("bench_table.py --self-test: all checks passed "
          "(gate fails on synthetic regression, clean errors on malformed "
          "input)")


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--gate", type=float, metavar="PCT", default=None,
                        help="fail if any gated metric regresses more than "
                             f"PCT percent (suggested: {DEFAULT_GATE_PCT:.0f})")
    parser.add_argument("--check-only", action="store_true",
                        help="validate report files and exit")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in gate/error-handling checks")
    parser.add_argument("files", nargs="*",
                        help="BASELINE CURRENT (or FILE... with --check-only)")
    args = parser.parse_args()

    try:
        if args.self_test:
            self_test()
        elif args.check_only:
            if not args.files:
                raise TableError("--check-only needs at least one file")
            for path in args.files:
                load(path)
                print(f"{path}: OK ({kind(load(path))} report)")
        else:
            if len(args.files) != 2:
                parser.error("expected exactly two files: BASELINE CURRENT")
            compare(args.files[0], args.files[1], args.gate)
    except TableError as e:
        print(f"bench_table.py: {e}", file=sys.stderr)
        sys.exit(1)


if __name__ == "__main__":
    main()
