#!/usr/bin/env python3
"""Render a compact before/after perf table from two BENCH_sweep.json files.

Usage: bench_table.py BASELINE.json CURRENT.json

Emits GitHub-flavoured markdown: one table for per-compressor codec
throughput (MB/s, with the after/before ratio), one for the Huffman-vs-rANS
entropy-backend ablation (ratio and MB/s side by side), and one for stage
wall times. CI pipes the output into $GITHUB_STEP_SUMMARY so perf
regressions are visible at a glance; the committed baseline lives in
benchmarks/BASELINE_sweep.json.

The script FAILS (non-zero exit) when the current report is missing any
registry variant it is supposed to measure — a silently skipped compressor
must break the bench-smoke job, not vanish from the summary.
"""

import json
import sys

# Every compressor bench_sweep's ablation registry must have measured, in
# both single-stream and framed form. Keep in sync with
# lcc_core::registry::entropy_ablation_registry().
REQUIRED_VARIANTS = ["mgard", "mgard-rans", "sz", "sz-rans", "zfp", "zfp-rans"]


def load(path):
    with open(path) as fh:
        return json.load(fh)


def ratio(before, after):
    if before and after:
        return f"{after / before:.2f}x"
    return "n/a"


def fmt(v):
    return f"{v:.1f}" if v is not None else "—"


def check_required_variants(current):
    """Fail loudly when a registry variant is missing from the report."""
    present = {t["compressor"] for t in current.get("throughput", [])}
    missing = [name for name in REQUIRED_VARIANTS if name not in present]
    missing += [f"{name}+framed" for name in REQUIRED_VARIANTS
                if f"{name}+framed" not in present]
    if missing:
        print(f"bench_table.py: BENCH report is missing registry variants: "
              f"{', '.join(missing)}", file=sys.stderr)
        sys.exit(1)


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    baseline, current = load(sys.argv[1]), load(sys.argv[2])
    check_required_variants(current)

    print(f"## Codec throughput — {current.get('label', '?')} (MB/s)")
    print()
    print("| compressor | compress before | compress after | ratio | "
          "decompress before | decompress after | ratio |")
    print("|---|---|---|---|---|---|---|")
    base_tp = {t["compressor"]: t for t in baseline.get("throughput", [])}
    for t in current.get("throughput", []):
        b = base_tp.get(t["compressor"], {})
        if not b and t["compressor"].endswith("+framed"):
            # `+framed` rows without a baseline counterpart (pre-framing
            # baseline) are pure noise here; the framed section below
            # renders them against the current single-stream numbers.
            # Anything else missing from the baseline still shows with a
            # "—" before column so new compressors stay visible.
            continue
        bc, ac = b.get("compress_mb_per_s"), t["compress_mb_per_s"]
        bd, ad = b.get("decompress_mb_per_s"), t["decompress_mb_per_s"]
        print(f"| {t['compressor']} | {fmt(bc)} | {fmt(ac)} | {ratio(bc, ac)} "
              f"| {fmt(bd)} | {fmt(ad)} | {ratio(bd, ad)} |")
    print()

    # Entropy-backend ablation: each study codec against its rANS-backend
    # variant, read from the *current* run — ratio and throughput side by
    # side, the tradeoff the backend axis exists to measure.
    cur_tp = {t["compressor"]: t for t in current.get("throughput", [])}
    pairs = [(name, cur_tp.get(name), cur_tp.get(f"{name}-rans"))
             for name in ["sz", "zfp", "mgard"]]
    pairs = [(n, h, r) for n, h, r in pairs if h and r]
    if pairs:
        print("## Entropy backend ablation — Huffman vs rANS, current run")
        print()
        print("| codec | ratio huffman | ratio rans | compress huffman | "
              "compress rans | speedup | decompress huffman | decompress rans "
              "| speedup |")
        print("|---|---|---|---|---|---|---|---|---|")
        for name, h, r in pairs:
            hc, rc = h["compress_mb_per_s"], r["compress_mb_per_s"]
            hd, rd = h["decompress_mb_per_s"], r["decompress_mb_per_s"]
            hr = h.get("compression_ratio")
            rr = r.get("compression_ratio")
            print(f"| {name} | {fmt(hr)} | {fmt(rr)} | {fmt(hc)} | {fmt(rc)} "
                  f"| {ratio(hc, rc)} | {fmt(hd)} | {fmt(rd)} "
                  f"| {ratio(hd, rd)} |")
        print()

    # Block-parallel framed codec: `<name>+framed` entries measure the same
    # single-field work through the multi-block container, so the speedup
    # column here is the block-parallel scaling of the *current* run (the
    # before/after table above tracks the trajectory across PRs).
    framed = [(name, t) for name, t in cur_tp.items() if name.endswith("+framed")]
    if framed:
        print("## Block-parallel framed codec — current run (MB/s)")
        print()
        print("| compressor | compress single | compress framed | speedup | "
              "decompress single | decompress framed | speedup |")
        print("|---|---|---|---|---|---|---|")
        for name, t in sorted(framed):
            single = cur_tp.get(name.removesuffix("+framed"), {})
            sc, fc = single.get("compress_mb_per_s"), t["compress_mb_per_s"]
            sd, fd = single.get("decompress_mb_per_s"), t["decompress_mb_per_s"]
            print(f"| {name.removesuffix('+framed')} | {fmt(sc)} | {fmt(fc)} "
                  f"| {ratio(sc, fc)} | {fmt(sd)} | {fmt(fd)} | {ratio(sd, fd)} |")
        print()

    print("## Stage wall times (s)")
    print()
    print("| stage | before | after | speedup |")
    print("|---|---|---|---|")
    base_stages = {s["stage"]: s["seconds"] for s in baseline.get("stages", [])}
    for s in current.get("stages", []):
        b = base_stages.get(s["stage"])
        before = f"{b:.3f}" if b is not None else "—"
        speedup = f"{b / s['seconds']:.2f}x" if b and s["seconds"] else "n/a"
        print(f"| {s['stage']} | {before} | {s['seconds']:.3f} | {speedup} |")
    print()
    print(f"Totals: {baseline.get('total_seconds', 0):.3f}s → "
          f"{current.get('total_seconds', 0):.3f}s "
          f"(baseline: committed benchmarks/BASELINE_sweep.json)")


if __name__ == "__main__":
    main()
